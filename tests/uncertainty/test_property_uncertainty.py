"""Property-based tests for the uncertainty machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.uncertainty import (
    RejectionPolicy,
    rejection_curve,
    shannon_entropy,
    variation_ratio,
    vote_entropy,
    vote_margin,
    votes_to_distribution,
)


@st.composite
def distributions(draw, max_classes=5):
    """Random categorical distributions (rows sum to 1)."""
    k = draw(st.integers(2, max_classes))
    n = draw(st.integers(1, 20))
    raw = draw(
        arrays(
            np.float64,
            (n, k),
            elements=st.floats(0.01, 1.0, allow_nan=False),
        )
    )
    return raw / raw.sum(axis=1, keepdims=True)


@st.composite
def vote_matrices(draw):
    """Random binary vote matrices."""
    n = draw(st.integers(1, 25))
    m = draw(st.integers(1, 40))
    return draw(arrays(np.int64, (n, m), elements=st.integers(0, 1)))


class TestEntropyProperties:
    @given(distributions())
    @settings(max_examples=80, deadline=None)
    def test_entropy_bounds(self, dist):
        ent = shannon_entropy(dist)
        k = dist.shape[1]
        assert np.all(ent >= -1e-9)
        assert np.all(ent <= np.log2(k) + 1e-9)

    @given(distributions())
    @settings(max_examples=80, deadline=None)
    def test_entropy_permutation_invariant(self, dist):
        rng = np.random.default_rng(0)
        perm = rng.permutation(dist.shape[1])
        np.testing.assert_allclose(
            shannon_entropy(dist), shannon_entropy(dist[:, perm]), atol=1e-9
        )

    @given(vote_matrices())
    @settings(max_examples=80, deadline=None)
    def test_vote_measures_consistent(self, votes):
        classes = np.array([0, 1])
        dist = votes_to_distribution(votes, classes)
        np.testing.assert_allclose(dist.sum(axis=1), 1.0, atol=1e-9)
        ent = vote_entropy(votes, classes)
        margin = vote_margin(votes, classes)
        vr = variation_ratio(votes, classes)
        assert np.all((ent >= -1e-9) & (ent <= 1.0 + 1e-9))
        assert np.all((margin >= -1e-9) & (margin <= 1.0 + 1e-9))
        assert np.all((vr >= -1e-9) & (vr <= 0.5 + 1e-9))
        # margin and variation ratio are linked: margin = 1 - 2 * vr
        np.testing.assert_allclose(margin, 1.0 - 2.0 * vr, atol=1e-9)

    @given(vote_matrices())
    @settings(max_examples=50, deadline=None)
    def test_unanimous_votes_zero_entropy(self, votes):
        classes = np.array([0, 1])
        unanimous = np.zeros_like(votes)
        np.testing.assert_allclose(vote_entropy(unanimous, classes), 0.0, atol=1e-9)


class TestRejectionProperties:
    @given(
        arrays(np.float64, st.integers(1, 60), elements=st.floats(0, 1, allow_nan=False)),
        st.floats(0, 1, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_policy_partition_complete(self, entropy, threshold):
        preds = np.zeros(len(entropy), dtype=int)
        result = RejectionPolicy(threshold).apply(preds, entropy)
        assert result.n_rejected + result.accepted.sum() == len(entropy)
        # accepted iff entropy <= threshold
        np.testing.assert_array_equal(result.accepted, entropy <= threshold)

    @given(
        arrays(np.float64, st.integers(1, 60), elements=st.floats(0, 1, allow_nan=False))
    )
    @settings(max_examples=50, deadline=None)
    def test_curve_monotone_and_bounded(self, entropy):
        thresholds = np.linspace(0, 1, 11)
        curve = rejection_curve(entropy, thresholds)
        assert np.all((curve >= 0) & (curve <= 100))
        assert np.all(np.diff(curve) <= 1e-9)
