"""Tests for the online monitoring and retraining loop."""

import numpy as np
import pytest

from repro.ml import RandomForestClassifier
from repro.uncertainty import (
    FlaggedSample,
    ForensicQueue,
    OnlineMonitor,
    RetrainingLoop,
    TrustedHMD,
)
from tests.conftest import make_blobs


def _fitted_hmd(X, y, threshold=0.4):
    return TrustedHMD(
        RandomForestClassifier(n_estimators=20, random_state=0),
        threshold=threshold,
    ).fit(X, y)


@pytest.fixture()
def monitor_setup():
    X, y = make_blobs(n_per_class=120, separation=4.0, seed=70)
    hmd = _fitted_hmd(X, y)
    return X, y, hmd


class TestForensicQueue:
    def _sample(self, entropy=0.9, step=0):
        return FlaggedSample(
            features=np.zeros(3), prediction=1, entropy=entropy, step=step
        )

    def test_push_and_len(self):
        q = ForensicQueue()
        q.push(self._sample())
        assert len(q) == 1
        assert q.total_flagged == 1

    def test_bounded(self):
        q = ForensicQueue(maxlen=3)
        for i in range(5):
            q.push(self._sample(step=i))
        assert len(q) == 3
        assert q.total_flagged == 5
        assert q.drain()[0].step == 2  # oldest two dropped

    def test_push_many_matches_repeated_push(self):
        bulk, rowwise = ForensicQueue(maxlen=3), ForensicQueue(maxlen=3)
        samples = [self._sample(step=i) for i in range(5)]
        assert bulk.push_many(samples) == 5
        for s in samples:
            rowwise.push(s)
        assert len(bulk) == len(rowwise) == 3
        assert bulk.total_flagged == rowwise.total_flagged == 5
        assert [s.step for s in bulk.snapshot()] == [
            s.step for s in rowwise.snapshot()
        ]

    def test_push_many_accepts_generator(self):
        q = ForensicQueue()
        assert q.push_many(self._sample(step=i) for i in range(4)) == 4
        assert len(q) == 4

    def test_drain_partial(self):
        q = ForensicQueue()
        for i in range(4):
            q.push(self._sample(step=i))
        drained = q.drain(2)
        assert [s.step for s in drained] == [0, 1]
        assert len(q) == 2

    def test_peek_entropies(self):
        q = ForensicQueue()
        q.push(self._sample(entropy=0.5))
        q.push(self._sample(entropy=0.7))
        np.testing.assert_allclose(q.peek_entropies(), [0.5, 0.7])
        assert len(q) == 2  # peek does not remove

    def test_invalid_maxlen(self):
        with pytest.raises(ValueError):
            ForensicQueue(maxlen=0)

    def test_snapshot_is_readonly_view(self):
        q = ForensicQueue()
        for i in range(4):
            q.push(self._sample(step=i))
        snap = q.snapshot()
        assert isinstance(snap, tuple)
        assert [s.step for s in snap] == [0, 1, 2, 3]
        assert len(q) == 4  # snapshot does not drain
        # Mutating the queue afterwards does not rewrite the snapshot.
        q.drain(2)
        assert [s.step for s in snap] == [0, 1, 2, 3]


class TestOnlineMonitor:
    def test_requires_fitted_hmd(self):
        from repro.ml import RandomForestClassifier

        with pytest.raises(ValueError):
            OnlineMonitor(TrustedHMD(RandomForestClassifier(n_estimators=3)))

    def test_stats_accumulate(self, monitor_setup):
        X, y, hmd = monitor_setup
        monitor = OnlineMonitor(hmd)
        monitor.observe(X[:50])
        assert monitor.stats.n_seen == 50
        assert monitor.stats.n_accepted + monitor.stats.n_flagged == 50

    def test_malware_alerts_counted(self, monitor_setup):
        X, y, hmd = monitor_setup
        monitor = OnlineMonitor(hmd)
        malware = X[y == 1][:30]
        monitor.observe(malware)
        assert monitor.stats.n_malware_alerts > 20

    def test_uncertain_inputs_fill_queue(self, monitor_setup):
        X, y, hmd = monitor_setup
        monitor = OnlineMonitor(hmd)
        contested = np.zeros((30, X.shape[1]))  # saddle between classes
        monitor.observe(contested)
        assert len(monitor.queue) > 10
        assert monitor.stats.rejection_rate > 0.3

    def test_single_sample_observation(self, monitor_setup):
        X, _, hmd = monitor_setup
        monitor = OnlineMonitor(hmd)
        verdict = monitor.observe(X[0])
        assert len(verdict.predictions) == 1
        assert monitor.stats.n_seen == 1

    def test_mean_entropy_tracks(self, monitor_setup):
        X, _, hmd = monitor_setup
        monitor = OnlineMonitor(hmd)
        monitor.observe(X[:20])
        assert 0.0 <= monitor.stats.mean_entropy <= 1.0


class TestRetrainingLoop:
    def test_retrains_after_min_batch(self, monitor_setup):
        X, y, hmd = monitor_setup
        rng = np.random.default_rng(1)
        # A new workload cluster far from the training data.
        X_new = rng.normal(size=(60, X.shape[1])) * 0.4
        X_new[:, 0] += 12.0
        y_new = np.ones(60, dtype=int)

        loop = RetrainingLoop(hmd, X, y, min_batch=20)
        samples = [
            FlaggedSample(features=x, prediction=0, entropy=0.9, step=i)
            for i, x in enumerate(X_new[:30])
        ]
        retrained = loop.incorporate(samples, y_new[:30])
        assert retrained
        assert loop.n_retrains == 1

    def test_uncertainty_drops_after_retraining(self, monitor_setup):
        X, y, hmd = monitor_setup
        rng = np.random.default_rng(2)
        X_new = rng.normal(size=(80, X.shape[1])) * 0.4
        X_new[:, 0] += 12.0

        before = hmd.predictive_entropy(X_new).mean()
        loop = RetrainingLoop(hmd, X, y, min_batch=10)
        samples = [
            FlaggedSample(features=x, prediction=0, entropy=0.9, step=i)
            for i, x in enumerate(X_new[:40])
        ]
        loop.incorporate(samples, np.ones(40, dtype=int))
        after = hmd.predictive_entropy(X_new[40:]).mean()
        assert after < before

    def test_small_batch_accumulates_without_retrain(self, monitor_setup):
        X, y, hmd = monitor_setup
        loop = RetrainingLoop(hmd, X, y, min_batch=50)
        samples = [
            FlaggedSample(features=X[0], prediction=0, entropy=0.5, step=0)
        ]
        assert not loop.incorporate(samples, [0])
        assert loop.n_retrains == 0
        assert len(loop.y_train) == len(y) + 1

    def test_label_length_checked(self, monitor_setup):
        X, y, hmd = monitor_setup
        loop = RetrainingLoop(hmd, X, y)
        with pytest.raises(ValueError):
            loop.incorporate(
                [FlaggedSample(features=X[0], prediction=0, entropy=0.5, step=0)],
                [0, 1],
            )

    def test_empty_incorporate_noop(self, monitor_setup):
        X, y, hmd = monitor_setup
        loop = RetrainingLoop(hmd, X, y)
        assert not loop.incorporate([], [])

    def test_small_batches_accumulate_to_trigger(self, monitor_setup):
        # The buffer is cumulative: three 4-sample analyst batches cross
        # min_batch=10 on the third call.
        X, y, hmd = monitor_setup
        loop = RetrainingLoop(hmd, X, y, min_batch=10)
        rng = np.random.default_rng(3)
        X_new = rng.normal(size=(12, X.shape[1])) * 0.4
        X_new[:, 0] += 12.0
        batches = [
            [
                FlaggedSample(features=x, prediction=0, entropy=0.9, step=i)
                for i, x in enumerate(block)
            ]
            for block in (X_new[:4], X_new[4:8], X_new[8:])
        ]
        assert not loop.incorporate(batches[0], np.ones(4, dtype=int))
        assert loop.n_pending == 4
        assert not loop.incorporate(batches[1], np.ones(4, dtype=int))
        assert loop.n_pending == 8
        assert loop.incorporate(batches[2], np.ones(4, dtype=int))
        assert loop.n_pending == 0
        assert loop.n_retrains == 1
        assert len(loop.y_train) == len(y) + 12

    def test_list_buffer_stacks_once(self, monitor_setup):
        # Many tiny incorporates must not re-stack the training matrix
        # per call (the old quadratic np.vstack); blocks accumulate and
        # X_train materialises on read.
        X, y, hmd = monitor_setup
        loop = RetrainingLoop(hmd, X, y, min_batch=10_000)
        for i in range(50):
            loop.incorporate(
                [FlaggedSample(features=X[0], prediction=0, entropy=0.5, step=i)],
                [0],
            )
        assert len(loop._X_blocks) == 51  # no eager stacking happened
        assert len(loop.X_train) == len(y) + 50
        assert len(loop._X_blocks) == 1   # a single lazy stack on read
        assert len(loop.y_train) == len(y) + 50

    def test_warm_partial_refit_path(self):
        # A hist-grown ensemble retrains through TrustedHMD.partial_refit:
        # bin edges stay warm and the binned buffer grows in place.
        from repro.ml import RandomForestClassifier

        X, y = make_blobs(n_per_class=120, separation=4.0, seed=71)
        hmd = TrustedHMD(
            RandomForestClassifier(n_estimators=20, grower="hist", random_state=0),
            threshold=0.4,
        ).fit(X, y)
        assert hmd.supports_partial_refit()
        rows_before = hmd.ensemble_._binned_.n_rows
        rng = np.random.default_rng(4)
        X_new = rng.normal(size=(30, X.shape[1])) * 0.4
        X_new[:, 0] += 12.0
        loop = RetrainingLoop(hmd, X, y, min_batch=20)
        samples = [
            FlaggedSample(features=x, prediction=0, entropy=0.9, step=i)
            for i, x in enumerate(X_new)
        ]
        assert loop.incorporate(samples, np.ones(30, dtype=int))
        assert hmd.ensemble_._binned_.n_rows == rows_before + 30
        assert hmd.predictive_entropy(X_new).mean() < 0.3


def test_ingest_verdict_coerces_int_accepted_mask(monitor_setup):
    """An int 0/1 accepted mask must behave like a bool mask (no bitwise ~)."""
    from repro.uncertainty import TrustedVerdict

    X, _, hmd = monitor_setup
    monitor = OnlineMonitor(hmd)
    verdict = TrustedVerdict(
        predictions=np.array([1, 0]),
        entropy=np.array([0.1, 0.9]),
        accepted=np.array([1, 0]),  # int mask a caller might hand-build
        threshold=0.4,
    )
    monitor.ingest_verdict(X[:2], verdict)
    assert monitor.stats.n_accepted == 1
    assert monitor.stats.n_flagged == 1
    assert len(monitor.queue) == 1


def test_ingest_verdict_rejects_mismatched_lengths(monitor_setup):
    from repro.uncertainty import TrustedVerdict

    X, _, hmd = monitor_setup
    monitor = OnlineMonitor(hmd)
    verdict = TrustedVerdict(
        predictions=np.array([1, 0]),
        entropy=np.array([0.1, 0.9]),
        accepted=np.array([True, False]),
        threshold=0.4,
    )
    with pytest.raises(ValueError, match="windows"):
        monitor.ingest_verdict(X[:1], verdict)
    assert monitor.stats.n_seen == 0  # no partial state mutation
