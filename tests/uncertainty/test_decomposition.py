"""Tests for aleatoric/epistemic uncertainty decomposition."""

import numpy as np
import pytest

from repro.ml import BaggingClassifier, LinearSVC, LogisticRegression, RandomForestClassifier
from repro.uncertainty import decompose_uncertainty, member_probabilities
from tests.conftest import make_blobs


class TestMemberProbabilities:
    def test_shape(self):
        X, y = make_blobs(n_per_class=50, seed=50)
        rf = RandomForestClassifier(n_estimators=8, random_state=0).fit(X, y)
        probs = member_probabilities(rf, X[:10])
        assert probs.shape == (8, 10, 2)
        np.testing.assert_allclose(probs.sum(axis=2), 1.0)

    def test_hard_members_give_onehot(self):
        X, y = make_blobs(n_per_class=50, seed=51)
        bag = BaggingClassifier(LinearSVC(), n_estimators=4, random_state=0).fit(X, y)
        probs = member_probabilities(bag, X[:6])
        assert set(np.unique(probs)) <= {0.0, 1.0}

    def test_unfitted_raises(self):
        with pytest.raises(ValueError):
            member_probabilities(RandomForestClassifier(), np.zeros((2, 2)))

    def test_feature_subsampled_bagging(self):
        X, y = make_blobs(n_per_class=60, n_features=8, seed=52)
        bag = BaggingClassifier(
            LogisticRegression(), n_estimators=5, max_features=0.5, random_state=0
        ).fit(X, y)
        probs = member_probabilities(bag, X[:4])
        assert probs.shape == (5, 4, 2)


class TestDecomposition:
    def test_total_equals_aleatoric_plus_epistemic(self):
        X, y = make_blobs(n_per_class=80, seed=53)
        rf = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        dec = decompose_uncertainty(rf, X[:30])
        np.testing.assert_allclose(
            dec.total, dec.aleatoric + dec.epistemic, atol=1e-9
        )

    def test_all_components_nonnegative(self):
        X, y = make_blobs(n_per_class=80, separation=0.8, seed=54)
        rf = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        dec = decompose_uncertainty(rf, X)
        assert np.all(dec.total >= 0)
        assert np.all(dec.aleatoric >= 0)
        assert np.all(dec.epistemic >= 0)

    def test_ood_is_epistemic_dominated(self):
        X, y = make_blobs(n_per_class=100, separation=6.0, seed=55)
        rf = RandomForestClassifier(
            n_estimators=20, min_samples_leaf=2, random_state=0
        ).fit(X, y)
        rng = np.random.default_rng(0)
        # OOD samples orthogonal to the blob axis.
        X_ood = rng.normal(size=(40, X.shape[1])) * 0.3
        X_ood[:, -1] += 25.0
        dec_ood = decompose_uncertainty(rf, X_ood)
        dec_in = decompose_uncertainty(rf, X)
        assert dec_ood.epistemic.mean() > dec_in.epistemic.mean()

    def test_overlap_is_aleatoric_dominated(self):
        X, y = make_blobs(n_per_class=300, separation=0.3, seed=56)
        rf = RandomForestClassifier(
            n_estimators=15, min_samples_leaf=20, random_state=0
        ).fit(X, y)
        dec = decompose_uncertainty(rf, X)
        assert dec.aleatoric.mean() > dec.epistemic.mean()

    def test_dominant_source_labels(self):
        X, y = make_blobs(n_per_class=60, seed=57)
        rf = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        dec = decompose_uncertainty(rf, X[:10])
        labels = dec.dominant_source()
        assert set(labels.tolist()) <= {"aleatoric", "epistemic"}
        assert len(dec) == 10
