"""Tests for operating-threshold calibration."""

import numpy as np
import pytest

from repro.uncertainty import (
    calibrate_threshold_by_budget,
    calibrate_threshold_by_f1,
)


class TestBudgetCalibration:
    def test_respects_budget(self):
        rng = np.random.default_rng(0)
        entropy = rng.random(1000)
        report = calibrate_threshold_by_budget(entropy, budget=0.05)
        assert np.mean(entropy > report.threshold) <= 0.05

    def test_tight_budget_higher_threshold(self):
        rng = np.random.default_rng(1)
        entropy = rng.random(1000)
        loose = calibrate_threshold_by_budget(entropy, budget=0.20)
        tight = calibrate_threshold_by_budget(entropy, budget=0.02)
        assert tight.threshold > loose.threshold

    def test_zero_entropy_stream(self):
        report = calibrate_threshold_by_budget(np.zeros(100), budget=0.05)
        assert report.known_rejection_rate == 0.0

    def test_report_renders(self):
        report = calibrate_threshold_by_budget(np.random.default_rng(2).random(50))
        assert "threshold=" in report.as_text()

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_threshold_by_budget(np.array([]))
        with pytest.raises(ValueError):
            calibrate_threshold_by_budget(np.ones(5), budget=0.0)
        with pytest.raises(ValueError):
            calibrate_threshold_by_budget(np.ones(5), grid=1)


class TestF1Calibration:
    def _validation_data(self, seed=3, n=600):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=n)
        entropy = rng.random(n)
        # Correct where certain, random where uncertain.
        predictions = np.where(entropy < 0.5, y, rng.integers(0, 2, size=n))
        return y, predictions, entropy

    def test_finds_improving_threshold(self):
        y, predictions, entropy = self._validation_data()
        report = calibrate_threshold_by_f1(y, predictions, entropy)
        from repro.ml.metrics import f1_score

        baseline = f1_score(y, predictions)
        assert report.details["f1"] >= baseline

    def test_acceptance_constraint_enforced(self):
        y, predictions, entropy = self._validation_data(seed=4)
        report = calibrate_threshold_by_f1(
            y, predictions, entropy, min_accepted_frac=0.5
        )
        assert report.known_rejection_rate <= 0.5 + 1e-9

    def test_impossible_constraint_raises(self):
        y, predictions, entropy = self._validation_data(seed=5)
        with pytest.raises(ValueError, match="acceptance"):
            calibrate_threshold_by_f1(
                y, predictions, np.ones_like(entropy) * 2.0,
                thresholds=[0.5], min_accepted_frac=0.5,
            )


class TestTrustedHmdCalibration:
    def test_calibrate_installs_threshold(self, dvfs_small):
        from repro.ml import RandomForestClassifier
        from repro.uncertainty import TrustedHMD

        hmd = TrustedHMD(
            RandomForestClassifier(n_estimators=25, random_state=0),
            threshold=0.0,
        ).fit(dvfs_small.train.X, dvfs_small.train.y)
        chosen = hmd.calibrate_threshold(dvfs_small.test.X, budget=0.10)
        assert chosen == hmd.policy_.threshold
        verdict = hmd.analyze(dvfs_small.test.X)
        assert verdict.rejection_rate <= 0.10 + 1e-9
