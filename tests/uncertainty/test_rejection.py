"""Tests for the rejection policy and sweep curves."""

import numpy as np
import pytest

from repro.uncertainty import (
    RejectionPolicy,
    f1_vs_threshold,
    rejection_curve,
)


class TestRejectionPolicy:
    def test_partitions_by_threshold(self):
        policy = RejectionPolicy(0.4)
        preds = np.array([0, 1, 1, 0])
        entropy = np.array([0.1, 0.5, 0.39, 0.41])
        result = policy.apply(preds, entropy)
        np.testing.assert_array_equal(result.accepted, [True, False, True, False])
        assert result.n_rejected == 2
        assert result.rejection_rate == pytest.approx(0.5)

    def test_accepted_predictions_subset(self):
        policy = RejectionPolicy(0.3)
        preds = np.array([0, 1, 1])
        entropy = np.array([0.0, 0.9, 0.1])
        np.testing.assert_array_equal(
            policy.apply(preds, entropy).accepted_predictions(), [0, 1]
        )

    def test_boundary_inclusive(self):
        result = RejectionPolicy(0.5).apply(np.array([1]), np.array([0.5]))
        assert result.accepted[0]  # entropy == threshold is accepted

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            RejectionPolicy(-0.1)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            RejectionPolicy(0.5).apply(np.array([1, 0]), np.array([0.1]))


class TestRejectionCurve:
    def test_monotone_decreasing(self):
        rng = np.random.default_rng(0)
        entropy = rng.random(500)
        thresholds = np.linspace(0, 1, 21)
        curve = rejection_curve(entropy, thresholds)
        assert np.all(np.diff(curve) <= 1e-9)

    def test_extremes(self):
        entropy = np.array([0.2, 0.4, 0.6])
        curve = rejection_curve(entropy, [0.0, 1.0])
        assert curve[0] == pytest.approx(100.0)
        assert curve[1] == pytest.approx(0.0)

    def test_hand_computed(self):
        entropy = np.array([0.1, 0.3, 0.5, 0.7])
        curve = rejection_curve(entropy, [0.4])
        assert curve[0] == pytest.approx(50.0)

    def test_empty_entropy_raises(self):
        with pytest.raises(ValueError):
            rejection_curve(np.array([]), [0.5])


class TestF1VsThreshold:
    def _data(self):
        rng = np.random.default_rng(1)
        n = 400
        y = rng.integers(0, 2, size=n)
        # Predictions correct where entropy is low, random where high.
        entropy = rng.random(n)
        preds = np.where(entropy < 0.5, y, rng.integers(0, 2, size=n))
        return y, preds, entropy

    def test_f1_improves_with_stricter_threshold(self):
        y, preds, entropy = self._data()
        rows = f1_vs_threshold(y, preds, entropy, [0.4, 1.0])
        assert rows[0]["f1"] > rows[1]["f1"]

    def test_accepted_fraction_monotone(self):
        y, preds, entropy = self._data()
        rows = f1_vs_threshold(y, preds, entropy, np.linspace(0.1, 1.0, 10))
        fracs = [r["accepted_frac"] for r in rows]
        assert all(a <= b + 1e-9 for a, b in zip(fracs, fracs[1:]))

    def test_too_few_accepted_gives_none(self):
        y = np.array([0, 1] * 10)
        preds = y.copy()
        entropy = np.ones(20)
        rows = f1_vs_threshold(y, preds, entropy, [0.0], min_accepted=5)
        assert rows[0]["f1"] is None

    def test_single_class_accepted_gives_none(self):
        y = np.array([0] * 10 + [1] * 10)
        preds = y.copy()
        entropy = np.concatenate([np.zeros(10), np.ones(10)])
        rows = f1_vs_threshold(y, preds, entropy, [0.5])
        assert rows[0]["f1"] is None  # only class 0 accepted

    def test_precision_recall_reported(self):
        y, preds, entropy = self._data()
        row = f1_vs_threshold(y, preds, entropy, [0.8])[0]
        assert 0 <= row["precision"] <= 1
        assert 0 <= row["recall"] <= 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            f1_vs_threshold([0, 1], [0], [0.1, 0.2], [0.5])
