"""Tests for the Trusted / Untrusted HMD pipelines."""

import numpy as np
import pytest

from repro.ml import (
    BaggingClassifier,
    LogisticRegression,
    NotFittedError,
    RandomForestClassifier,
)
from repro.uncertainty import TrustedHMD, UntrustedHMD
from tests.conftest import make_blobs


@pytest.fixture(scope="module")
def hmd_data():
    X, y = make_blobs(n_per_class=150, separation=4.0, seed=60)
    rng = np.random.default_rng(0)
    X_ood = rng.normal(size=(60, X.shape[1]))
    X_ood[:, 0] += 30.0  # far out-of-distribution
    return X, y, X_ood


class TestUntrustedHMD:
    def test_always_emits_decision(self, hmd_data):
        X, y, X_ood = hmd_data
        hmd = UntrustedHMD(LogisticRegression()).fit(X, y)
        preds = hmd.predict(X_ood)
        assert preds.shape == (len(X_ood),)
        assert set(np.unique(preds)) <= {0, 1}

    def test_accuracy_in_distribution(self, hmd_data):
        X, y, _ = hmd_data
        hmd = UntrustedHMD(LogisticRegression()).fit(X, y)
        assert np.mean(hmd.predict(X) == y) > 0.97

    def test_optional_pca(self, hmd_data):
        X, y, _ = hmd_data
        hmd = UntrustedHMD(LogisticRegression(), n_components=3).fit(X, y)
        assert hmd.pca_ is not None
        assert np.mean(hmd.predict(X) == y) > 0.9


class TestTrustedHMD:
    def _fit(self, X, y, threshold=0.4):
        return TrustedHMD(
            RandomForestClassifier(n_estimators=25, random_state=0),
            threshold=threshold,
        ).fit(X, y)

    def test_verdict_fields(self, hmd_data):
        X, y, X_ood = hmd_data
        hmd = self._fit(X, y)
        verdict = hmd.analyze(X_ood)
        assert len(verdict.predictions) == len(X_ood)
        assert verdict.entropy.shape == (len(X_ood),)
        assert verdict.threshold == 0.4

    def test_in_distribution_mostly_accepted(self, hmd_data):
        X, y, _ = hmd_data
        hmd = self._fit(X, y)
        verdict = hmd.analyze(X)
        assert verdict.rejection_rate < 0.1

    def test_ood_mostly_rejected(self, hmd_data):
        X, y, X_ood = hmd_data
        hmd = self._fit(X, y)
        # Points at the midpoint saddle between the classes are the
        # contested region where members disagree.
        X_saddle = np.zeros((40, X.shape[1]))
        verdict = hmd.analyze(X_saddle)
        assert verdict.rejection_rate > 0.5

    def test_flagged_indices_match_mask(self, hmd_data):
        X, y, _ = hmd_data
        hmd = self._fit(X, y)
        X_saddle = np.zeros((10, X.shape[1]))
        verdict = hmd.analyze(X_saddle)
        np.testing.assert_array_equal(
            verdict.flagged_indices(), np.flatnonzero(~verdict.accepted)
        )

    def test_with_threshold_updates_policy(self, hmd_data):
        X, y, _ = hmd_data
        hmd = self._fit(X, y, threshold=0.1)
        strict = hmd.analyze(X).rejection_rate
        loose = hmd.with_threshold(1.0).analyze(X).rejection_rate
        assert loose <= strict
        assert hmd.policy_.threshold == 1.0

    def test_predict_ignores_policy(self, hmd_data):
        X, y, _ = hmd_data
        hmd = self._fit(X, y)
        assert np.mean(hmd.predict(X) == y) > 0.95

    def test_entropy_accessor(self, hmd_data):
        X, y, _ = hmd_data
        hmd = self._fit(X, y)
        ent = hmd.predictive_entropy(X[:20])
        assert np.all((ent >= 0) & (ent <= 1 + 1e-9))

    def test_works_with_bagging(self, hmd_data):
        X, y, _ = hmd_data
        hmd = TrustedHMD(
            BaggingClassifier(LogisticRegression(), n_estimators=10, random_state=0)
        ).fit(X, y)
        assert hmd.analyze(X[:10]).predictions.shape == (10,)

    def test_pca_pipeline(self, hmd_data):
        X, y, _ = hmd_data
        hmd = TrustedHMD(
            RandomForestClassifier(n_estimators=10, random_state=0),
            n_components=4,
        ).fit(X, y)
        assert np.mean(hmd.predict(X) == y) > 0.9

    def test_unfitted_analyze_raises(self, hmd_data):
        X, _, _ = hmd_data
        hmd = TrustedHMD(RandomForestClassifier(n_estimators=3))
        with pytest.raises((NotFittedError, AttributeError)):
            hmd.analyze(X[:2])
