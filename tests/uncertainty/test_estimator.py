"""Tests for the EnsembleUncertaintyEstimator (Fig. 2 module)."""

import numpy as np
import pytest

from repro.ml import (
    BaggingClassifier,
    DecisionTreeClassifier,
    LogisticRegression,
    RandomForestClassifier,
    VotingClassifier,
)
from repro.uncertainty import EnsembleUncertaintyEstimator
from tests.conftest import make_blobs


@pytest.fixture(scope="module")
def fitted_rf(blobs_module):
    X, y = blobs_module
    return RandomForestClassifier(n_estimators=30, random_state=0).fit(X, y)


@pytest.fixture(scope="module")
def blobs_module():
    return make_blobs(n_per_class=150, seed=40)


class TestConstruction:
    def test_requires_decisions_method(self, blobs_module):
        X, y = blobs_module
        model = LogisticRegression().fit(X, y)
        with pytest.raises(TypeError, match="decisions"):
            EnsembleUncertaintyEstimator(model)

    def test_requires_fitted(self):
        with pytest.raises(ValueError, match="fitted"):
            EnsembleUncertaintyEstimator(RandomForestClassifier())

    def test_wraps_all_ensemble_types(self, blobs_module):
        X, y = blobs_module
        for ensemble in (
            RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y),
            BaggingClassifier(n_estimators=5, random_state=0).fit(X, y),
            VotingClassifier(
                [("lr", LogisticRegression()), ("tree", DecisionTreeClassifier(max_depth=3))]
            ).fit(X, y),
        ):
            estimator = EnsembleUncertaintyEstimator(ensemble)
            assert estimator.predictive_entropy(X[:5]).shape == (5,)


class TestEstimates:
    def test_in_distribution_low_entropy(self, fitted_rf, blobs_module):
        X, _ = blobs_module
        estimator = EnsembleUncertaintyEstimator(fitted_rf)
        ent = estimator.predictive_entropy(X)
        assert np.median(ent) < 0.1

    def test_boundary_points_high_entropy(self, fitted_rf, blobs_module):
        X, _ = blobs_module
        estimator = EnsembleUncertaintyEstimator(fitted_rf)
        X_boundary = np.zeros((20, X.shape[1]))  # midpoint between blobs
        ent_boundary = estimator.predictive_entropy(X_boundary)
        ent_train = estimator.predictive_entropy(X)
        assert ent_boundary.mean() > ent_train.mean()

    def test_entropy_bounded_binary(self, fitted_rf, blobs_module):
        X, _ = blobs_module
        ent = EnsembleUncertaintyEstimator(fitted_rf).predictive_entropy(X)
        assert np.all((ent >= 0) & (ent <= 1.0 + 1e-9))

    def test_distribution_rows_sum(self, fitted_rf, blobs_module):
        X, _ = blobs_module
        dist = EnsembleUncertaintyEstimator(fitted_rf).predictive_distribution(X[:10])
        np.testing.assert_allclose(dist.sum(axis=1), 1.0)

    def test_predict_matches_ensemble(self, fitted_rf, blobs_module):
        X, _ = blobs_module
        estimator = EnsembleUncertaintyEstimator(fitted_rf)
        np.testing.assert_array_equal(
            estimator.predict(X[:25]), fitted_rf.predict(X[:25])
        )

    def test_predict_with_uncertainty_consistent(self, fitted_rf, blobs_module):
        X, _ = blobs_module
        estimator = EnsembleUncertaintyEstimator(fitted_rf)
        labels, entropy = estimator.predict_with_uncertainty(X[:15])
        np.testing.assert_array_equal(labels, estimator.predict(X[:15]))
        np.testing.assert_allclose(entropy, estimator.predictive_entropy(X[:15]))

    def test_report_fields_consistent(self, fitted_rf, blobs_module):
        X, _ = blobs_module
        report = EnsembleUncertaintyEstimator(fitted_rf).report(X[:10])
        assert len(report) == 10
        np.testing.assert_allclose(report.distribution.sum(axis=1), 1.0)
        # variation ratio = 1 - max vote fraction
        np.testing.assert_allclose(
            report.variation_ratio, 1.0 - report.distribution.max(axis=1)
        )

    def test_n_members(self, fitted_rf):
        assert EnsembleUncertaintyEstimator(fitted_rf).n_members == 30


class TestEnsembleSizeSweep:
    def test_subsets_prefix_members(self, fitted_rf, blobs_module):
        X, _ = blobs_module
        estimator = EnsembleUncertaintyEstimator(fitted_rf)
        result = estimator.entropy_vs_ensemble_size(X[:50], [1, 5, 30])
        assert set(result) == {1, 5, 30}
        # Single member => zero entropy always.
        assert result[1] == pytest.approx(0.0)

    def test_invalid_sizes(self, fitted_rf, blobs_module):
        X, _ = blobs_module
        estimator = EnsembleUncertaintyEstimator(fitted_rf)
        with pytest.raises(ValueError):
            estimator.entropy_vs_ensemble_size(X[:5], [0])
        with pytest.raises(ValueError):
            estimator.entropy_vs_ensemble_size(X[:5], [500])
