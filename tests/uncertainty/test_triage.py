"""Tests for forensic-queue triage clustering."""

import numpy as np
import pytest

from repro.uncertainty import FlaggedSample, ForensicQueue, triage_queue


def _queue_with_groups(seed=0, per_group=40):
    """Queue containing two well-separated feature groups."""
    rng = np.random.default_rng(seed)
    queue = ForensicQueue()
    step = 0
    for center, prediction, entropy in ((-4.0, 0, 0.9), (4.0, 1, 0.6)):
        for _ in range(per_group):
            queue.push(
                FlaggedSample(
                    features=rng.normal(center, 0.3, size=3),
                    prediction=prediction,
                    entropy=entropy + rng.normal(scale=0.02),
                    step=step,
                )
            )
            step += 1
    return queue


class TestTriageQueue:
    def test_empty_queue(self):
        assert triage_queue(ForensicQueue()) == []

    def test_groups_recovered(self):
        queue = _queue_with_groups()
        clusters = triage_queue(queue, n_clusters=2, random_state=0)
        assert len(clusters) == 2
        assert {c.size for c in clusters} == {40}

    def test_cluster_statistics(self):
        queue = _queue_with_groups(seed=1)
        clusters = triage_queue(queue, n_clusters=2, random_state=0)
        by_prediction = {c.majority_prediction: c for c in clusters}
        assert set(by_prediction) == {0, 1}
        assert by_prediction[0].mean_entropy == pytest.approx(0.9, abs=0.05)
        assert by_prediction[1].mean_entropy == pytest.approx(0.6, abs=0.05)

    def test_queue_not_modified(self):
        queue = _queue_with_groups(seed=2)
        before = len(queue)
        triage_queue(queue, n_clusters=2)
        assert len(queue) == before

    def test_default_cluster_count(self):
        queue = _queue_with_groups(seed=3, per_group=16)  # n=32 -> ~4 clusters
        clusters = triage_queue(queue)
        assert 1 <= len(clusters) <= 8

    def test_sorted_by_size(self):
        rng = np.random.default_rng(4)
        queue = ForensicQueue()
        for i in range(50):
            queue.push(FlaggedSample(rng.normal(size=2), 0, 0.5, i))
        clusters = triage_queue(queue, n_clusters=3, random_state=0)
        sizes = [c.size for c in clusters]
        assert sizes == sorted(sizes, reverse=True)

    def test_single_sample_queue(self):
        queue = ForensicQueue()
        queue.push(FlaggedSample(np.zeros(2), 1, 0.7, 0))
        clusters = triage_queue(queue, n_clusters=5)
        assert len(clusters) == 1
        assert clusters[0].size == 1
