"""Tests for uncertainty measures (Eq. 4 and alternatives)."""

import numpy as np
import pytest

from repro.uncertainty import (
    shannon_entropy,
    variation_ratio,
    vote_entropy,
    vote_margin,
    votes_to_distribution,
)


class TestShannonEntropy:
    def test_uniform_binary_is_one_bit(self):
        assert shannon_entropy(np.array([0.5, 0.5])) == pytest.approx(1.0)

    def test_certain_is_zero(self):
        assert shannon_entropy(np.array([1.0, 0.0])) == pytest.approx(0.0)

    def test_uniform_k_classes_is_log_k(self):
        for k in (2, 3, 4, 8):
            dist = np.full(k, 1.0 / k)
            assert shannon_entropy(dist) == pytest.approx(np.log2(k))

    def test_batch_shape(self):
        dists = np.array([[0.5, 0.5], [1.0, 0.0], [0.25, 0.75]])
        ent = shannon_entropy(dists)
        assert ent.shape == (3,)
        assert ent[0] == pytest.approx(1.0)
        assert ent[1] == pytest.approx(0.0)

    def test_natural_log_base(self):
        ent = shannon_entropy(np.array([0.5, 0.5]), base=np.e)
        assert ent == pytest.approx(np.log(2.0))

    def test_hand_computed(self):
        # H(0.9, 0.1) = 0.469 bits
        assert shannon_entropy(np.array([0.9, 0.1])) == pytest.approx(0.469, abs=1e-3)

    def test_not_a_distribution_raises(self):
        with pytest.raises(ValueError, match="sum to 1"):
            shannon_entropy(np.array([0.5, 0.3]))

    def test_negative_probability_raises(self):
        with pytest.raises(ValueError):
            shannon_entropy(np.array([1.2, -0.2]))

    def test_invalid_base_raises(self):
        with pytest.raises(ValueError):
            shannon_entropy(np.array([0.5, 0.5]), base=1.0)

    def test_symmetric(self):
        assert shannon_entropy(np.array([0.3, 0.7])) == pytest.approx(
            shannon_entropy(np.array([0.7, 0.3]))
        )


class TestVotesToDistribution:
    def test_unanimous(self):
        votes = np.zeros((3, 10), dtype=int)
        dist = votes_to_distribution(votes, np.array([0, 1]))
        np.testing.assert_allclose(dist, [[1.0, 0.0]] * 3)

    def test_split_votes(self):
        votes = np.array([[0, 0, 1, 1]])
        dist = votes_to_distribution(votes, np.array([0, 1]))
        np.testing.assert_allclose(dist, [[0.5, 0.5]])

    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        votes = rng.integers(0, 3, size=(20, 15))
        dist = votes_to_distribution(votes, np.array([0, 1, 2]))
        np.testing.assert_allclose(dist.sum(axis=1), 1.0)

    def test_unknown_labels_raise(self):
        votes = np.array([[0, 5]])
        with pytest.raises(ValueError, match="outside"):
            votes_to_distribution(votes, np.array([0, 1]))

    def test_1d_votes_rejected(self):
        with pytest.raises(ValueError):
            votes_to_distribution(np.array([0, 1]), np.array([0, 1]))


class TestVoteEntropy:
    def test_max_disagreement(self):
        votes = np.array([[0, 1] * 10])
        assert vote_entropy(votes, np.array([0, 1]))[0] == pytest.approx(1.0)

    def test_unanimity(self):
        votes = np.ones((1, 20), dtype=int)
        assert vote_entropy(votes, np.array([0, 1]))[0] == pytest.approx(0.0)

    def test_monotone_in_disagreement(self):
        classes = np.array([0, 1])
        previous = -1.0
        for n_dissent in range(0, 11):
            votes = np.array([[1] * (20 - n_dissent) + [0] * n_dissent])
            ent = vote_entropy(votes, classes)[0]
            assert ent > previous
            previous = ent


class TestMarginAndVariationRatio:
    def test_margin_unanimous_is_one(self):
        votes = np.zeros((2, 8), dtype=int)
        np.testing.assert_allclose(vote_margin(votes, np.array([0, 1])), 1.0)

    def test_margin_split_is_zero(self):
        votes = np.array([[0, 0, 1, 1]])
        assert vote_margin(votes, np.array([0, 1]))[0] == pytest.approx(0.0)

    def test_variation_ratio_unanimous_zero(self):
        votes = np.ones((3, 9), dtype=int)
        np.testing.assert_allclose(variation_ratio(votes, np.array([0, 1])), 0.0)

    def test_variation_ratio_split_half(self):
        votes = np.array([[0, 0, 1, 1]])
        assert variation_ratio(votes, np.array([0, 1]))[0] == pytest.approx(0.5)

    def test_all_measures_agree_on_ordering(self):
        classes = np.array([0, 1])
        confident = np.array([[1] * 19 + [0]])
        uncertain = np.array([[1] * 11 + [0] * 9])
        assert vote_entropy(confident, classes)[0] < vote_entropy(uncertain, classes)[0]
        assert vote_margin(confident, classes)[0] > vote_margin(uncertain, classes)[0]
        assert (
            variation_ratio(confident, classes)[0]
            < variation_ratio(uncertain, classes)[0]
        )


def test_votes_to_distribution_rejects_zero_members():
    with pytest.raises(ValueError, match="member"):
        votes_to_distribution(np.empty((3, 0)), np.array([0, 1]))
