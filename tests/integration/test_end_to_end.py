"""Integration tests asserting the paper's qualitative results.

These run at a moderate scale (larger than the smoke context, smaller
than the full Table I) — big enough for the geometric effects to be
stable, small enough for CI.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentContext,
    demonstrate_hpc_svm_failure,
    run_claims,
    run_fig4,
    run_fig5,
    run_fig7a,
    run_fig7b,
    run_fig9a,
    run_fig9b,
)
from repro.ml.metrics import f1_score


@pytest.fixture(scope="module")
def context():
    config = ExperimentConfig(dvfs_scale=0.5, hpc_scale=0.08, n_estimators=60)
    return ExperimentContext(config)


@pytest.mark.slow
class TestDvfsPaperShape:
    def test_baseline_f1_at_least_paper(self, context):
        # Paper: F1 > 0.88 on the DVFS known data.
        ds = context.dataset("dvfs")
        fitted = context.fitted("dvfs", "rf")
        assert f1_score(ds.test.y, fitted.predictions_test) > 0.88

    def test_unknown_entropy_above_known(self, context):
        fig4 = run_fig4(context=context)
        assert fig4.separation("rf") > 0.3
        known_median = fig4.stats[("rf", "known")]["median"]
        assert known_median < 0.15

    def test_rf_best_unknown_detector(self, context):
        fig7a = run_fig7a(context=context)
        known_rf, unknown_rf = fig7a.operating_point("rf", 0.40)
        _, unknown_svm = fig7a.operating_point("svm", 0.40)
        assert unknown_rf >= 75.0
        assert known_rf <= 12.0
        assert unknown_rf > unknown_svm

    def test_f1_rises_as_threshold_tightens(self, context):
        fig7b = run_fig7b(context=context)
        strictest = next(r for r in fig7b.dvfs_rows if r["f1"] is not None)
        assert strictest["f1"] > fig7b.dvfs_rows[-1]["f1"]

    def test_entropy_stabilizes_by_about_twenty(self, context):
        fig9a = run_fig9a(context=context)
        assert fig9a.stabilization_size(tolerance=0.03) <= 30


@pytest.mark.slow
class TestHpcPaperShape:
    def test_known_entropy_comparable_to_unknown(self, context):
        fig5 = run_fig5(context=context)
        gap = fig5.known_unknown_gap("rf")
        assert abs(gap) < 0.25
        assert fig5.stats[("rf", "known")]["median"] > 0.3

    def test_rejection_curves_track(self, context):
        fig9b = run_fig9b(context=context)
        assert fig9b.known_unknown_tracking_error("rf") < 15.0

    def test_accuracy_matches_paper_band(self, context):
        # Paper: ~0.8 F1 / 84% accuracy for RF on HPC.
        ds = context.dataset("hpc")
        fitted = context.fitted("hpc", "rf")
        accuracy = float(np.mean(fitted.predictions_test == ds.test.y))
        assert 0.7 <= accuracy <= 0.95

    def test_rejection_raises_f1(self, context):
        fig7b = run_fig7b(context=context)
        assert fig7b.best_f1("hpc") >= fig7b.final_f1("hpc") + 0.05

    def test_svm_fails_to_converge(self, context):
        assert demonstrate_hpc_svm_failure(
            context=context, n_samples=800, max_iter=3
        )


@pytest.mark.slow
class TestDiversityMechanism:
    def test_tree_uncertainty_quality_beats_linsvm(self, context):
        # The paper's mechanism claim: bagging the non-convex learner
        # (trees) yields the better unknown detector, because the convex
        # SVM replicas lack diversity.  Needs a meaningful sample size
        # to be stable.
        from repro.experiments import run_diversity_ablation

        result = run_diversity_ablation(
            context=context, n_estimators=25, max_samples_grid=(1.0,)
        )
        assert result.auc("tree", 1.0) > result.auc("linsvm", 1.0)


@pytest.mark.slow
class TestClaims:
    def test_all_claims_pass(self, context):
        result = run_claims(context=context)
        failures = [c for c in result.claims if not c.passed]
        assert not failures, "\n" + "\n".join(
            f"{c.claim_id}: measured {c.measured}" for c in failures
        )
