"""Tests for the dataset builders (Table I reproduction)."""

import numpy as np
import pytest

from repro.data import (
    DVFS_TABLE1,
    HPC_TABLE1,
    build_dvfs_dataset,
    build_hpc_dataset,
)
from repro.data.builders import _allocate


class TestAllocate:
    def test_exact_total(self):
        assert sum(_allocate(284, 4)) == 284

    def test_parts_differ_by_at_most_one(self):
        parts = _allocate(100, 7)
        assert max(parts) - min(parts) <= 1

    def test_errors(self):
        with pytest.raises(ValueError):
            _allocate(2, 5)
        with pytest.raises(ValueError):
            _allocate(5, 0)


class TestDvfsBuilder:
    def test_scaled_counts_proportional(self, dvfs_small):
        taxonomy = dvfs_small.taxonomy()
        assert taxonomy["train"] == pytest.approx(DVFS_TABLE1["train"] * 0.1, rel=0.15)
        assert taxonomy["test"] == pytest.approx(DVFS_TABLE1["test"] * 0.1, rel=0.15)

    def test_all_known_apps_in_both_splits(self, dvfs_small):
        assert set(dvfs_small.train.app_counts()) == set(
            dvfs_small.test.app_counts()
        )
        assert len(dvfs_small.train.app_counts()) == 14

    def test_unknown_apps_not_in_train(self, dvfs_small):
        train_apps = set(dvfs_small.train.app_counts())
        unknown_apps = set(dvfs_small.unknown.app_counts())
        assert not train_apps & unknown_apps

    def test_labels_balanced_in_known(self, dvfs_small):
        counts = dvfs_small.train.class_counts()
        assert counts[0] == counts[1]

    def test_features_finite(self, dvfs_small):
        for split in (dvfs_small.train, dvfs_small.test, dvfs_small.unknown):
            assert np.all(np.isfinite(split.X))

    def test_deterministic_given_seed(self):
        from repro.data import clear_dataset_cache

        a = build_dvfs_dataset(seed=11, scale=0.02)
        clear_dataset_cache()
        b = build_dvfs_dataset(seed=11, scale=0.02)
        np.testing.assert_allclose(a.train.X, b.train.X)

    def test_cache_returns_same_object(self):
        a = build_dvfs_dataset(seed=7, scale=0.1)
        b = build_dvfs_dataset(seed=7, scale=0.1)
        assert a is b

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            build_dvfs_dataset(scale=0.0)

    def test_metadata_records_apps(self, dvfs_small):
        assert len(dvfs_small.metadata["known_apps"]) == 14
        assert len(dvfs_small.metadata["unknown_apps"]) == 4


class TestHpcBuilder:
    def test_scaled_counts_proportional(self, hpc_small):
        taxonomy = hpc_small.taxonomy()
        assert taxonomy["train"] == pytest.approx(HPC_TABLE1["train"] * 0.02, rel=0.05)
        assert taxonomy["unknown"] == pytest.approx(
            HPC_TABLE1["unknown"] * 0.02, rel=0.05
        )

    def test_app_coverage(self, hpc_small):
        assert len(hpc_small.train.app_counts()) == 22
        assert len(hpc_small.unknown.app_counts()) == 6

    def test_unknown_disjoint_from_train(self, hpc_small):
        assert not set(hpc_small.train.app_counts()) & set(
            hpc_small.unknown.app_counts()
        )

    def test_features_finite(self, hpc_small):
        for split in (hpc_small.train, hpc_small.test, hpc_small.unknown):
            assert np.all(np.isfinite(split.X))

    def test_feature_names_match_width(self, hpc_small):
        assert hpc_small.train.X.shape[1] == hpc_small.n_features


@pytest.mark.slow
class TestFullScaleCounts:
    """Exact Table I counts — exercised at full scale (slower)."""

    def test_dvfs_table1_exact(self):
        ds = build_dvfs_dataset(seed=7, scale=1.0)
        assert ds.taxonomy() == DVFS_TABLE1

    def test_hpc_table1_exact(self):
        ds = build_hpc_dataset(seed=7, scale=1.0)
        assert ds.taxonomy() == HPC_TABLE1


class TestEmBuilder:
    def test_builds_and_shapes(self):
        from repro.data import build_em_dataset

        ds = build_em_dataset(seed=7, scale=0.1)
        assert ds.name == "em"
        assert ds.train.n_samples > 0
        assert ds.train.X.shape[1] == ds.n_features
        assert len(ds.train.app_counts()) == 14

    def test_unknown_disjoint(self):
        from repro.data import build_em_dataset

        ds = build_em_dataset(seed=7, scale=0.1)
        assert not set(ds.train.app_counts()) & set(ds.unknown.app_counts())

    def test_cache(self):
        from repro.data import build_em_dataset

        assert build_em_dataset(seed=7, scale=0.1) is build_em_dataset(
            seed=7, scale=0.1
        )


class TestGovernorVariant:
    def test_governor_recorded_and_distinct(self):
        from repro.data import build_dvfs_dataset
        from repro.sim import PerformanceGovernor

        base = build_dvfs_dataset(seed=7, scale=0.05)
        pinned = build_dvfs_dataset(
            seed=7, scale=0.05, governor=PerformanceGovernor()
        )
        assert base.metadata["governor"] == "ondemand"
        assert pinned.metadata["governor"] == "PerformanceGovernor"
        assert base is not pinned
        # Pinned-frequency signatures differ from ondemand ones.
        assert not np.allclose(base.train.X, pinned.train.X)
