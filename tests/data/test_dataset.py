"""Tests for the dataset containers."""

import numpy as np
import pytest

from repro.data import DataSplit, HmdDataset


def _split(n=10, n_features=3, label=0, app="app"):
    return DataSplit(
        X=np.zeros((n, n_features)),
        y=np.full(n, label),
        apps=np.full(n, app),
    )


class TestDataSplit:
    def test_counts(self):
        split = DataSplit(
            X=np.zeros((4, 2)),
            y=np.array([0, 0, 1, 1]),
            apps=np.array(["a", "a", "b", "b"]),
        )
        assert split.n_samples == 4
        assert split.class_counts() == {0: 2, 1: 2}
        assert split.app_counts() == {"a": 2, "b": 2}

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            DataSplit(X=np.zeros((3, 2)), y=np.zeros(2), apps=np.zeros(3))

    def test_subset(self):
        split = DataSplit(
            X=np.arange(8).reshape(4, 2).astype(float),
            y=np.array([0, 1, 0, 1]),
            apps=np.array(["a", "b", "a", "b"]),
        )
        sub = split.subset(split.y == 1)
        assert sub.n_samples == 2
        assert set(sub.apps) == {"b"}

    def test_subset_bad_mask(self):
        with pytest.raises(ValueError):
            _split(5).subset(np.ones(3, dtype=bool))


class TestHmdDataset:
    def _dataset(self):
        return HmdDataset(
            name="toy",
            train=_split(8),
            test=_split(4),
            unknown=_split(2, label=1, app="unk"),
            feature_names=("f0", "f1", "f2"),
        )

    def test_taxonomy(self):
        ds = self._dataset()
        assert ds.taxonomy() == {"train": 8, "test": 4, "unknown": 2}

    def test_feature_count_checked(self):
        with pytest.raises(ValueError):
            HmdDataset(
                name="bad",
                train=_split(4, n_features=2),
                test=_split(2, n_features=2),
                unknown=_split(2, n_features=2),
                feature_names=("f0", "f1", "f2"),
            )

    def test_summary_renders(self):
        text = self._dataset().summary()
        assert "train" in text and "unknown" in text
