"""Tests for the live dashboard: message folding and headless frames.

The dashboard is a pure function from posted messages to a rendered
string, so every test here runs without a TTY: deterministic message
sequences produce deterministic frames, snapshot-asserted below, and
the experiment runner drives real fleets through both backends and
checks the captured frames.
"""

import io

import pytest

from repro.experiments import run_dashboard
from repro.fleet.report import DeviceReport, FleetReport
from repro.obs import (
    Dashboard,
    MetricsUpdate,
    ReportUpdate,
    ShardSample,
    ShardsUpdate,
    TraceUpdate,
    ansi_frame,
    bar,
    sparkline,
)

pytestmark = pytest.mark.obs


class TestPrimitives:
    def test_sparkline_spans_the_range(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_sparkline_flat_and_empty(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"
        assert sparkline([]) == ""

    def test_sparkline_truncates_to_width(self):
        assert len(sparkline(range(100), width=16)) == 16

    def test_bar_levels(self):
        assert bar(0, 10) == "[░░░░░░░░░░]"
        assert bar(10, 10) == "[██████████]"
        assert bar(5, 10) == "[█████░░░░░]"
        assert bar(3, 0) == "[░░░░░░░░░░]"  # zero scale degrades gracefully

    def test_ansi_frame_prefixes_clear(self):
        assert ansi_frame("x").endswith("x")
        assert ansi_frame("x").startswith("\x1b[")


def _device(device_id="dev-0000", cohort="benign", **kw):
    defaults = dict(
        n_seen=10, n_flagged=2, n_malware_alerts=0, n_shed=0, n_pending=0,
        rejection_rate=0.2, alert_rate=0.0, recent_entropy=0.1,
    )
    defaults.update(kw)
    return DeviceReport(device_id=device_id, cohort=cohort, **defaults)


def _report(devices, **kw):
    defaults = dict(
        n_seen=sum(d.n_seen for d in devices),
        n_accepted=sum(d.n_seen - d.n_flagged for d in devices),
        n_flagged=sum(d.n_flagged for d in devices),
        n_malware_alerts=sum(d.n_malware_alerts for d in devices),
        n_shed=0, n_pending=0, n_batches=2, mean_entropy=0.15,
        drift_status=None,
    )
    defaults.update(kw)
    return FleetReport(devices=tuple(devices), **defaults)


class TestDashboardState:
    def test_waiting_frame(self):
        frame = Dashboard().render()
        assert "waiting for traffic" in frame

    def test_unknown_message_raises(self):
        with pytest.raises(TypeError):
            Dashboard().post("not a message")

    def test_shard_wps_from_sample_history(self):
        dashboard = Dashboard()
        for ts, seen in ((10.0, 0), (11.0, 500), (12.0, 1000)):
            dashboard.post(ShardsUpdate(
                rows=(ShardSample(0, "healthy", seen, 0, 0),), ts=ts,
            ))
        assert dashboard.shard_wps(0) == 500.0
        assert dashboard.shard_wps(99) == 0.0  # unknown shard

    def test_device_trends_accumulate(self):
        dashboard = Dashboard(history=4)
        for rate in (0.1, 0.2, 0.3, 0.4, 0.5):
            dashboard.post(ReportUpdate(
                report=_report([_device(rejection_rate=rate)]), ts=0.0,
            ))
        trend = dashboard._device_trends["dev-0000"]
        assert list(trend) == [0.2, 0.3, 0.4, 0.5]  # bounded history


class TestFrameSnapshot:
    """Deterministic messages → exact frame (headless, no TTY)."""

    def _loaded_dashboard(self):
        dashboard = Dashboard()
        dashboard.post(ShardsUpdate(
            rows=(
                ShardSample(0, "healthy", 0, 0, 64),
                ShardSample(1, "degraded", 0, 0, 32, restarts=1),
            ),
            ts=10.0,
        ))
        dashboard.post(ShardsUpdate(
            rows=(
                ShardSample(0, "healthy", 128, 10, 0),
                ShardSample(1, "degraded", 64, 2, 0, restarts=1),
            ),
            ts=12.0,
        ))
        dashboard.post(ReportUpdate(
            report=_report([
                _device("dev-0000", "malware", n_malware_alerts=8,
                        alert_rate=0.8),
                _device("dev-0001", "benign"),
            ]),
            ts=12.0,
        ))
        dashboard.post(MetricsUpdate(snapshot={
            "counters": {
                "fleet_windows_admitted_total": 192,
                "fleet_windows_drained_total": 192,
                "fleet_windows_flagged_total": 12,
            },
            "gauges": {},
            "histograms": {},
        }))
        dashboard.post(TraceUpdate(summary={
            "n_sampled": 3, "n_completed": 3, "n_pending": 0, "rate": 64,
            "stages": ["ingest", "queue", "verdict", "scatter"],
            "transitions": {
                "ingest→queue": {"p50": 0.001, "p95": 0.002, "p99": 0.002,
                                 "n": 3},
            },
            "total": {"p50": 0.004, "p95": 0.005, "p99": 0.006, "n": 3},
        }))
        return dashboard

    def test_frame_snapshot(self):
        raw = self._loaded_dashboard().render()
        frame = "\n".join(line.rstrip() for line in raw.splitlines())
        expected = """\
fleet dashboard — frame 1 · 2 devices · 20 seen · 4 flagged (20.0%) · 8 alerts · pending 0 · shed 0

shard  health    seen  flagged  pending  wps  restarts  queue
-----  --------  ----  -------  -------  ---  --------  ------------
0      healthy   128   10       0        64   0         [░░░░░░░░░░]
1      degraded  64    2        0        32   1         [░░░░░░░░░░]

device    cohort   seen  alerts  flag%  flag trend
--------  -------  ----  ------  -----  ----------
dev-0000  malware  10    8       20.0%  ▁
dev-0001  benign   10    0       20.0%  ▁

stage latencies — 1/64 sampled, 3 spans, stages: ingest→queue→verdict→scatter
transition    p50_ms  p95_ms  p99_ms  n
------------  ------  ------  ------  -
ingest→queue  1.00    2.00    2.00    3
total         4.00    5.00    6.00    3

counters: admitted=192  drained=192  flagged=12"""
        assert frame == expected

    def test_frames_are_pure_state_renders(self):
        dashboard = self._loaded_dashboard()
        first = dashboard.render()
        second = dashboard.render()
        # Only the frame counter moves between renders of the same state.
        assert second == first.replace("frame 1", "frame 2")

    def test_message_count_tracked(self):
        assert self._loaded_dashboard().n_messages == 5


class TestRunnerBackends:
    """The experiment runner renders live frames from real fleets."""

    def test_inprocess_backend_frames(self, small_context):
        result = run_dashboard(
            context=small_context, n_devices=12, windows_per_device=6,
            frames=2, live=False,
        )
        assert result.backend == "in-process"
        assert result.n_frames == 2
        assert result.n_spans > 0
        final = result.final_frame
        assert "fleet dashboard" in final
        assert f"{result.n_windows} seen" in final
        assert "stage latencies" in final
        assert "ingest→queue" in final
        assert "counters:" in final
        for shard_id in range(result.n_shards):
            assert f"\n{shard_id}      healthy" in final

    @pytest.mark.mp
    def test_worker_backend_frames(self, small_context):
        result = run_dashboard(
            context=small_context, n_devices=8, windows_per_device=6,
            frames=2, processes=2, batch_size=32, live=False,
        )
        assert result.backend == "worker"
        assert result.n_frames == 2
        # The worker path's spans include the shm crossing.
        assert "ship→verdict" in result.final_frame
        assert "restarts" in result.final_frame

    def test_live_mode_writes_ansi_frames_to_stream(self, small_context):
        stream = io.StringIO()
        result = run_dashboard(
            context=small_context, n_devices=8, windows_per_device=4,
            frames=2, live=True, stream=stream,
        )
        out = stream.getvalue()
        assert out.count("\x1b[2J\x1b[H") == result.n_frames
        assert "fleet dashboard" in out
