"""Tests for the metrics registry: instruments, merge, exposition."""

import json
import math

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    JsonlExporter,
    MetricsRegistry,
    NULL_REGISTRY,
    default_registry,
    histogram_percentile,
    merge_snapshots,
    render_prometheus,
    resolve_registry,
    summarize_snapshot,
)

pytestmark = pytest.mark.obs


class TestInstruments:
    def test_counter_accumulates(self):
        c = MetricsRegistry().counter("x_total", "help")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_gauge_holds_last_value(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3)
        g.set(17.5)
        assert g.value == 17.5

    def test_histogram_observe_and_percentile(self):
        h = MetricsRegistry().histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert math.isclose(h.sum, 5.6)
        assert h.percentile(50) == 0.1
        assert h.percentile(99) == 10.0

    def test_histogram_observe_many_matches_loop(self):
        values = np.random.default_rng(0).exponential(0.01, size=500)
        bulk = MetricsRegistry().histogram("a_seconds")
        loop = MetricsRegistry().histogram("b_seconds")
        bulk.observe_many(values)
        for v in values:
            loop.observe(v)
        assert bulk.count == loop.count == 500
        assert math.isclose(bulk.sum, loop.sum)
        np.testing.assert_array_equal(bulk._counts, loop._counts)

    def test_histogram_overflow_bucket(self):
        h = MetricsRegistry().histogram("x_seconds", buckets=(1.0,))
        h.observe(100.0)
        assert h.count == 1
        assert h.percentile(50) == 1.0  # overflow reports the last bound

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("empty", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h_seconds") is registry.histogram("h_seconds")

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError):
            registry.gauge("name")
        with pytest.raises(ValueError):
            registry.histogram("name")

    def test_snapshot_round_trips_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(7)
        registry.gauge("g").set(2.5)
        registry.histogram("h_seconds").observe(0.003)
        snap = registry.snapshot()
        assert snap["counters"] == {"c_total": 7}
        assert snap["gauges"] == {"g": 2.5}
        assert snap["histograms"]["h_seconds"]["count"] == 1
        assert list(snap["histograms"]["h_seconds"]["buckets"]) == list(
            DEFAULT_BUCKETS
        )
        json.dumps(snap)  # must be JSON-serialisable as-is

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()


class TestDisabledRegistry:
    def test_noop_instruments_are_shared_and_inert(self):
        disabled = MetricsRegistry(enabled=False)
        c = disabled.counter("x_total")
        assert c is disabled.counter("y_total")  # one shared null object
        c.inc(100)
        assert c.value == 0
        g = disabled.gauge("g")
        g.set(5)
        assert g.value == 0.0
        h = disabled.histogram("h_seconds")
        h.observe(1.0)
        h.observe_many([1.0, 2.0])
        assert h.count == 0
        assert h.percentile(99) == 0.0

    def test_snapshot_is_empty(self):
        assert MetricsRegistry(enabled=False).snapshot() == {}
        assert NULL_REGISTRY.snapshot() == {}

    def test_resolve_registry_semantics(self):
        assert resolve_registry(None) is NULL_REGISTRY
        assert resolve_registry(False) is NULL_REGISTRY
        fresh = resolve_registry(True)
        assert fresh.enabled and fresh is not resolve_registry(True)
        mine = MetricsRegistry()
        assert resolve_registry(mine) is mine


def _snap(counter=0, gauge=0.0, hist_values=(), buckets=(0.1, 1.0)):
    registry = MetricsRegistry()
    registry.counter("c_total").inc(counter)
    registry.gauge("g").set(gauge)
    h = registry.histogram("h_seconds", buckets=buckets)
    h.observe_many(list(hist_values))
    return registry.snapshot()


class TestMergeSnapshots:
    def test_counters_and_gauges_sum(self):
        merged = merge_snapshots([_snap(counter=3, gauge=1.0),
                                  _snap(counter=4, gauge=2.5)])
        assert merged["counters"]["c_total"] == 7
        assert merged["gauges"]["g"] == 3.5

    def test_histograms_merge_elementwise(self):
        merged = merge_snapshots(
            [_snap(hist_values=(0.05, 0.5)), _snap(hist_values=(5.0,))]
        )
        hist = merged["histograms"]["h_seconds"]
        assert hist["count"] == 3
        assert hist["counts"] == [1, 1, 1]
        assert math.isclose(hist["sum"], 5.55)

    def test_empty_snapshots_are_identities(self):
        a = _snap(counter=5)
        assert merge_snapshots([a, {}, {}]) == merge_snapshots([a])

    def test_merge_is_associative(self):
        a = _snap(counter=1, gauge=0.5, hist_values=(0.05,))
        b = _snap(counter=2, gauge=1.5, hist_values=(0.5, 5.0))
        c = _snap(counter=4, gauge=2.0, hist_values=(0.05, 0.05))
        left = merge_snapshots([merge_snapshots([a, b]), c])
        right = merge_snapshots([a, merge_snapshots([b, c])])
        assert left == right

    def test_mismatched_buckets_raise(self):
        with pytest.raises(ValueError):
            merge_snapshots(
                [_snap(hist_values=(0.5,)),
                 _snap(hist_values=(0.5,), buckets=(0.2, 2.0))]
            )


class TestHistogramPercentile:
    def test_empty_histogram_is_zero(self):
        assert histogram_percentile(
            {"buckets": [1.0], "counts": [0, 0], "sum": 0.0, "count": 0}, 50
        ) == 0.0

    def test_matches_bucket_upper_bound(self):
        hist = {"buckets": [0.1, 1.0], "counts": [9, 1, 0], "sum": 1.0,
                "count": 10}
        assert histogram_percentile(hist, 50) == 0.1
        assert histogram_percentile(hist, 99) == 1.0


class TestExposition:
    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("fleet_x_total", "things").inc(3)
        registry.gauge("fleet_depth").set(2)
        registry.histogram("fleet_lat_seconds", buckets=(0.1, 1.0)).observe(0.5)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE fleet_x_total counter" in text
        assert "fleet_x_total 3" in text
        assert "# TYPE fleet_depth gauge" in text
        assert 'fleet_lat_seconds_bucket{le="0.1"} 0' in text
        assert 'fleet_lat_seconds_bucket{le="1.0"} 1' in text
        assert 'fleet_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "fleet_lat_seconds_count 1" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""

    def test_summarize_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("fleet_x_total").inc(3)
        registry.histogram("fleet_lat_seconds").observe(0.005)
        text = summarize_snapshot(registry.snapshot())
        assert "fleet_x_total" in text
        assert "fleet_lat_seconds" in text
        assert "p95_ms" in text

    def test_summarize_disabled(self):
        assert "disabled" in summarize_snapshot({})


class TestJsonlExporter:
    def test_export_appends_records(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(2)
        path = tmp_path / "telemetry.jsonl"
        with JsonlExporter(path, registry) as exporter:
            exporter.export()
            registry.counter("c_total").inc(1)
            exporter.export()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["telemetry"]["counters"]["c_total"] == 2
        assert records[1]["telemetry"]["counters"]["c_total"] == 3
        assert records[0]["t"] <= records[1]["t"]

    def test_maybe_export_paces_itself(self, tmp_path):
        registry = MetricsRegistry()
        exporter = JsonlExporter(
            tmp_path / "t.jsonl", registry, interval=3600.0
        )
        assert exporter.maybe_export() is True
        assert exporter.maybe_export() is False  # within the interval
        assert exporter.n_exports == 1
        exporter.close()

    def test_export_without_registry_or_snapshot_raises(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlExporter(tmp_path / "t.jsonl").export()

    def test_export_explicit_snapshot(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlExporter(path) as exporter:
            exporter.export({"counters": {"x_total": 1}})
        assert json.loads(path.read_text())["telemetry"]["counters"] == {
            "x_total": 1
        }
