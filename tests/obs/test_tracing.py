"""Tests for sampled window-lifecycle tracing.

The load-bearing guarantees: sampling is deterministic per
``(device_id, seq)`` (same windows sampled on every backend and every
replay), spans cover every pipeline stage the traffic actually visits
— including the shm crossing on the multi-process path — and the
summary's transition percentiles are computed over completed spans
only.
"""

import numpy as np
import pytest

from repro.fleet import (
    BackpressurePolicy,
    ShardedFleetMonitor,
    WorkerShardedFleetMonitor,
)
from repro.fleet.engine import batch_verdict_key
from repro.ml import RandomForestClassifier
from repro.obs import STAGES, TraceContext, TraceSampler, TraceSpan
from repro.uncertainty import TrustedHMD
from tests.conftest import make_blobs

pytestmark = pytest.mark.obs


class TestTraceSampler:
    def test_deterministic_across_instances(self):
        a = TraceSampler(rate=8, seed=3)
        b = TraceSampler(rate=8, seed=3)
        picks_a = [a.sample(f"dev-{i % 5}", i) for i in range(400)]
        picks_b = [b.sample(f"dev-{i % 5}", i) for i in range(400)]
        assert picks_a == picks_b
        assert any(picks_a) and not all(picks_a)

    def test_block_mask_matches_scalar_path(self):
        sampler = TraceSampler(rate=16, seed=1)
        seqs = np.arange(256)
        mask = sampler.sample_block("dev-0", seqs)
        assert mask.tolist() == [sampler.sample("dev-0", int(s)) for s in seqs]

    def test_mixed_batch_mask_matches_scalar_path(self):
        sampler = TraceSampler(rate=4, seed=2)
        device_ids = np.array([f"dev-{i % 3}" for i in range(90)])
        seqs = np.arange(90)
        mask = sampler.sample_rows(device_ids, seqs)
        assert mask.tolist() == [
            sampler.sample(str(d), int(s)) for d, s in zip(device_ids, seqs)
        ]

    def test_rate_one_samples_everything(self):
        sampler = TraceSampler(rate=1)
        assert sampler.sample_block("dev", np.arange(32)).all()

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            TraceSampler(rate=0)


class TestTraceContext:
    def test_span_lifecycle_with_explicit_timestamps(self):
        tracer = TraceContext(TraceSampler(rate=1))
        assert tracer.begin("dev-0", 7, ts=1.0)
        tracer.stamp("dev-0", 7, "queue", ts=2.0)
        tracer.stamp("dev-0", 7, "verdict", ts=4.0)
        assert tracer.complete_rows(["dev-0"], [7], ts=7.0) == 1
        assert tracer.n_completed == 1 and tracer.n_pending == 0
        (span,) = tracer.spans
        assert span.stamps == {
            "ingest": 1.0, "queue": 2.0, "verdict": 4.0, "scatter": 7.0
        }
        assert span.duration() == 6.0
        assert span.transitions() == [
            ("ingest", "queue", 1.0),
            ("queue", "verdict", 2.0),
            ("verdict", "scatter", 3.0),
        ]

    def test_unsampled_windows_cost_nothing(self):
        tracer = TraceContext(TraceSampler(rate=10**9, seed=5))
        assert tracer.begin_block("dev-0", np.arange(100)) == 0
        tracer.stamp_rows(["dev-0"] * 3, [1, 2, 3], "queue")
        assert tracer.complete_rows(["dev-0"] * 3, [1, 2, 3]) == 0
        assert tracer.n_sampled == 0 and len(tracer.spans) == 0

    def test_stamp_on_untraced_window_is_noop(self):
        tracer = TraceContext(TraceSampler(rate=1))
        tracer.stamp("dev-9", 3, "queue")  # never began
        assert tracer.n_pending == 0

    def test_summary_shape(self):
        tracer = TraceContext(TraceSampler(rate=1))
        for seq in range(4):
            tracer.begin("dev-0", seq, ts=float(seq))
            tracer.stamp("dev-0", seq, "queue", ts=float(seq) + 0.5)
        tracer.complete_rows(["dev-0"] * 4, list(range(4)), ts=10.0)
        summary = tracer.summary()
        assert summary["n_completed"] == 4
        assert summary["stages"] == ["ingest", "queue", "scatter"]
        assert set(summary["transitions"]) == {"ingest→queue", "queue→scatter"}
        assert summary["transitions"]["ingest→queue"]["p50"] == 0.5
        assert summary["transitions"]["ingest→queue"]["n"] == 4
        assert summary["total"]["n"] == 4

    def test_summary_empty(self):
        summary = TraceContext().summary()
        assert summary["total"] is None
        assert summary["transitions"] == {}

    def test_span_cap_bounds_memory(self):
        tracer = TraceContext(TraceSampler(rate=1), max_spans=8)
        for seq in range(32):
            tracer.begin("dev-0", seq, ts=0.0)
            tracer.complete_rows(["dev-0"], [seq], ts=1.0)
        assert len(tracer.spans) == 8
        assert tracer.n_completed == 32


@pytest.fixture(scope="module")
def fitted_hmd():
    X, y = make_blobs(n_per_class=120, separation=4.0, seed=70)
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=20, random_state=0),
        threshold=0.4,
    ).fit(X, y)
    return X, hmd


def _arrivals(X, n_devices=6, rounds=20, seed=1):
    rng = np.random.default_rng(seed)
    return [
        (f"dev-{d:03d}", X[rng.integers(len(X))])
        for _ in range(rounds)
        for d in range(n_devices)
    ]


def _drive(monitor, arrivals):
    for device_id, _ in arrivals:
        monitor.register(device_id)
    for device_id, window in arrivals:
        monitor.submit(device_id, window)
    return monitor.drain()


class TestMonitorSpans:
    def test_inprocess_spans_cover_all_stages(self, fitted_hmd):
        X, hmd = fitted_hmd
        tracer = TraceContext(TraceSampler(rate=4, seed=0))
        monitor = ShardedFleetMonitor(
            hmd, n_shards=2, batch_size=32, tracer=tracer
        )
        _drive(monitor, _arrivals(X))
        assert tracer.n_completed > 0
        assert tracer.n_pending == 0  # every begun span finished
        assert tracer.stages_covered() == {
            "ingest", "queue", "verdict", "scatter"
        }
        for span in tracer.spans:
            stamps = [span.stamps[s] for s in STAGES if s in span.stamps]
            assert stamps == sorted(stamps)  # monotone through the stages

    @pytest.mark.mp
    def test_worker_spans_cover_shm_crossing(self, fitted_hmd):
        X, hmd = fitted_hmd
        arrivals = _arrivals(X)
        tracer = TraceContext(TraceSampler(rate=4, seed=0))
        plain = ShardedFleetMonitor(hmd, n_shards=2, batch_size=32)
        plain_batches = _drive(plain, arrivals)
        with WorkerShardedFleetMonitor(
            hmd,
            n_shards=2,
            batch_size=32,
            mp_context="fork",
            tracer=tracer,
            policy=BackpressurePolicy(max_pending=len(arrivals) + 1),
        ) as fleet:
            batches = _drive(fleet, arrivals)
        # The sidecar-merged spans cover every stage including ship and
        # the worker-stamped verdict, and tracing never perturbs verdicts.
        assert batch_verdict_key(batches) == batch_verdict_key(plain_batches)
        assert tracer.n_completed > 0
        assert tracer.stages_covered() == set(STAGES)
        summary = tracer.summary()
        assert "ship→verdict" in summary["transitions"]
        for span in tracer.spans:
            assert set(span.stamps) == set(STAGES)
            stamps = [span.stamps[s] for s in STAGES]
            assert stamps == sorted(stamps)

    def test_same_windows_sampled_on_both_backends(self, fitted_hmd):
        X, hmd = fitted_hmd
        arrivals = _arrivals(X)
        keys = []
        for n_shards in (1, 3):
            tracer = TraceContext(TraceSampler(rate=4, seed=0))
            monitor = ShardedFleetMonitor(
                hmd, n_shards=n_shards, batch_size=32, tracer=tracer
            )
            _drive(monitor, arrivals)
            keys.append(sorted((s.device_id, s.seq) for s in tracer.spans))
        assert keys[0] == keys[1]

    def test_trace_span_duration_missing_stage(self):
        span = TraceSpan("dev-0", 1, {"ingest": 1.0})
        assert span.duration() is None
        assert span.transitions() == []
