"""Tests for DVFS and HPC feature extraction."""

import numpy as np
import pytest

from repro.hmd import DvfsFeatureExtractor, HpcFeatureExtractor
from repro.sim import (
    ActivityTrace,
    DvfsTrace,
    HpcSimulator,
    SocSimulator,
    WorkloadGenerator,
)
from repro.hmd.apps import DVFS_KNOWN_BENIGN


def _dvfs_trace(n=240, seed=0):
    spec = DVFS_KNOWN_BENIGN[0]
    activity = WorkloadGenerator(random_state=seed).generate(spec, n)
    return SocSimulator(random_state=seed).run(activity)


class TestDvfsFeatures:
    def test_vector_matches_names(self):
        trace = _dvfs_trace()
        extractor = DvfsFeatureExtractor()
        names = extractor.feature_names(trace)
        vector = extractor.extract(trace)
        assert len(names) == len(vector)

    def test_residency_sums_to_one_per_channel(self):
        trace = _dvfs_trace()
        extractor = DvfsFeatureExtractor()
        names = extractor.feature_names(trace)
        vector = extractor.extract(trace)
        for channel in trace.channel_names:
            idx = [i for i, n in enumerate(names) if n.startswith(f"{channel}_residency_")]
            assert np.isclose(vector[idx].sum(), 1.0)

    def test_features_finite(self):
        vector = DvfsFeatureExtractor().extract(_dvfs_trace(seed=3))
        assert np.all(np.isfinite(vector))

    def test_constant_trace_degenerate_features(self):
        trace = DvfsTrace(
            states=np.zeros((100, 1), dtype=int),
            frequencies_mhz=((100.0, 200.0),),
            channel_names=("cpu",),
            temperature_c=np.full(100, 40.0),
        )
        extractor = DvfsFeatureExtractor()
        vector = extractor.extract(trace)
        names = extractor.feature_names(trace)
        lookup = dict(zip(names, vector))
        assert lookup["cpu_residency_0"] == 1.0
        assert lookup["cpu_transition_rate"] == 0.0
        assert lookup["cpu_mean_dwell"] == 100.0
        assert lookup["cpu_max_dwell_frac"] == 1.0

    def test_alternating_states_high_transition_rate(self):
        states = np.tile([0, 1], 50)[:, None]
        trace = DvfsTrace(
            states=states,
            frequencies_mhz=((100.0, 200.0),),
            channel_names=("cpu",),
            temperature_c=np.full(100, 40.0),
        )
        extractor = DvfsFeatureExtractor()
        lookup = dict(zip(extractor.feature_names(trace), extractor.extract(trace)))
        assert lookup["cpu_transition_rate"] == pytest.approx(1.0)
        # A 2-step oscillation concentrates energy in the top band.
        assert lookup["cpu_spectral_band_3"] > 0.9

    def test_extract_windows_shape(self):
        trace = _dvfs_trace(n=720)
        X = DvfsFeatureExtractor().extract_windows(trace, 240)
        assert X.shape[0] == 3

    def test_extract_windows_trailing_dropped(self):
        trace = _dvfs_trace(n=500)
        X = DvfsFeatureExtractor().extract_windows(trace, 240)
        assert X.shape[0] == 2

    def test_extract_windows_too_short_raises(self):
        trace = _dvfs_trace(n=100)
        with pytest.raises(ValueError):
            DvfsFeatureExtractor().extract_windows(trace, 240)


def _hpc_trace(n_steps=400, seed=0):
    spec = DVFS_KNOWN_BENIGN[0]
    activity = WorkloadGenerator(random_state=seed).generate(spec, n_steps)
    return HpcSimulator(random_state=seed).run(activity)


class TestHpcFeatures:
    def test_one_row_per_interval(self):
        trace = _hpc_trace()
        X = HpcFeatureExtractor().extract(trace)
        assert X.shape[0] == trace.n_intervals

    def test_vector_matches_names(self):
        trace = _hpc_trace()
        extractor = HpcFeatureExtractor()
        assert X_cols(extractor, trace) == extractor.extract(trace).shape[1]

    def test_features_finite(self):
        X = HpcFeatureExtractor().extract(_hpc_trace(seed=2))
        assert np.all(np.isfinite(X))

    def test_rate_features_physical(self):
        trace = _hpc_trace(seed=3)
        extractor = HpcFeatureExtractor()
        names = extractor.feature_names(trace)
        X = extractor.extract(trace)
        lookup = {n: X[:, i] for i, n in enumerate(names)}
        assert np.all(lookup["ipc"] > 0)
        assert np.all(lookup["branch_frac"] <= 1.0)
        assert np.all(lookup["frontend_stall_frac"] <= 1.0)

    def test_log_counts_match_raw(self):
        trace = _hpc_trace(seed=4)
        extractor = HpcFeatureExtractor()
        names = extractor.feature_names(trace)
        X = extractor.extract(trace)
        i = names.index("log_instructions")
        np.testing.assert_allclose(
            X[:, i], np.log1p(trace.column("instructions"))
        )


def X_cols(extractor, trace):
    return len(extractor.feature_names(trace))
