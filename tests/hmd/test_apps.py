"""Tests for the application catalogues."""

import numpy as np

from repro.hmd import (
    DVFS_KNOWN_BENIGN,
    DVFS_KNOWN_MALWARE,
    DVFS_UNKNOWN,
    HPC_KNOWN_BENIGN,
    HPC_KNOWN_MALWARE,
    HPC_UNKNOWN,
    dvfs_known_apps,
    dvfs_unknown_apps,
    hpc_known_apps,
    hpc_unknown_apps,
)


class TestCatalogueStructure:
    def test_labels_consistent(self):
        assert all(s.label == 0 for s in DVFS_KNOWN_BENIGN + HPC_KNOWN_BENIGN)
        assert all(s.label == 1 for s in DVFS_KNOWN_MALWARE + HPC_KNOWN_MALWARE)

    def test_names_unique_within_domain(self):
        dvfs_names = [s.name for s in dvfs_known_apps() + dvfs_unknown_apps()]
        hpc_names = [s.name for s in hpc_known_apps() + hpc_unknown_apps()]
        assert len(set(dvfs_names)) == len(dvfs_names)
        assert len(set(hpc_names)) == len(hpc_names)

    def test_known_unknown_disjoint(self):
        known = {s.name for s in dvfs_known_apps()}
        unknown = {s.name for s in dvfs_unknown_apps()}
        assert not known & unknown

    def test_unknown_contains_both_labels(self):
        # The unknown bucket mixes new benign apps and new malware
        # families (Fig. 6).
        assert {s.label for s in DVFS_UNKNOWN} == {0, 1}
        assert {s.label for s in HPC_UNKNOWN} == {0, 1}

    def test_balanced_dvfs_known_classes(self):
        assert len(DVFS_KNOWN_BENIGN) == len(DVFS_KNOWN_MALWARE)

    def test_transition_matrices_valid(self):
        for spec in dvfs_known_apps() + dvfs_unknown_apps() + hpc_known_apps():
            matrix = spec.transition_matrix()
            np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-9)
            assert np.all(matrix >= 0)


class TestGeometryIntent:
    def test_dvfs_malware_low_gpu(self):
        # Adware legitimately renders ads; all other malware leaves the
        # GPU essentially idle — the catalogue invariant behind the DVFS
        # class separation story.
        for spec in DVFS_KNOWN_MALWARE:
            if spec.name == "adware":
                continue
            assert max(p.gpu_mean for p in spec.phases) <= 0.05

    def test_dvfs_benign_have_gpu_activity(self):
        for spec in DVFS_KNOWN_BENIGN:
            assert max(p.gpu_mean for p in spec.phases) >= 0.04

    def test_hpc_parameter_ranges_overlap(self):
        # HPC benign and malware working sets are drawn from the same
        # ranges (the overlap mechanism).
        benign_ws = [p.working_set_kib for s in HPC_KNOWN_BENIGN for p in s.phases]
        malware_ws = [p.working_set_kib for s in HPC_KNOWN_MALWARE for p in s.phases]
        assert min(benign_ws) < np.median(malware_ws) < max(benign_ws)

    def test_hpc_jitter_larger_than_dvfs(self):
        dvfs_jitter = {s.app_jitter for s in dvfs_known_apps()}
        hpc_jitter = {s.app_jitter for s in hpc_known_apps()}
        assert max(dvfs_jitter) < min(hpc_jitter)
