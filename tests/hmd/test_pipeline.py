"""Tests for the raw-trace HMD front-ends."""

import numpy as np
import pytest

from repro.hmd import DvfsHmdFrontend, HpcHmdFrontend
from repro.hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, HPC_KNOWN_BENIGN, HPC_KNOWN_MALWARE
from repro.ml import RandomForestClassifier
from repro.sim import HpcSimulator, SocSimulator, WorkloadGenerator


def _dvfs_traces(specs, n_steps, seed):
    generator = WorkloadGenerator(random_state=seed)
    soc = SocSimulator(random_state=seed)
    return [soc.run(generator.generate(spec, n_steps)) for spec in specs]


def _hpc_traces(specs, n_steps, seed):
    generator = WorkloadGenerator(random_state=seed)
    sim = HpcSimulator(random_state=seed)
    return [sim.run(generator.generate(spec, n_steps)) for spec in specs]


@pytest.fixture(scope="module")
def dvfs_frontend():
    specs = DVFS_KNOWN_BENIGN[:3] + DVFS_KNOWN_MALWARE[:3]
    labels = [s.label for s in specs]
    # 8 windows per app at 240 steps each.
    traces = _dvfs_traces(specs, 240 * 8, seed=0)
    frontend = DvfsHmdFrontend(
        RandomForestClassifier(n_estimators=15, random_state=0),
        window_steps=240,
        threshold=0.4,
    )
    return frontend.fit(traces, labels)


class TestDvfsFrontend:
    def test_fit_and_analyze(self, dvfs_frontend):
        spec = DVFS_KNOWN_BENIGN[0]
        trace = _dvfs_traces([spec], 240 * 4, seed=1)[0]
        verdict = dvfs_frontend.analyze(trace)
        assert len(verdict.predictions) == 4  # one verdict per window

    def test_known_app_classified_correctly(self, dvfs_frontend):
        benign_trace = _dvfs_traces([DVFS_KNOWN_BENIGN[0]], 240 * 6, seed=2)[0]
        malware_trace = _dvfs_traces([DVFS_KNOWN_MALWARE[1]], 240 * 6, seed=2)[0]
        benign_verdict = dvfs_frontend.analyze(benign_trace)
        malware_verdict = dvfs_frontend.analyze(malware_trace)
        accepted_b = benign_verdict.accepted
        accepted_m = malware_verdict.accepted
        if accepted_b.any():
            assert np.mean(benign_verdict.predictions[accepted_b] == 0) > 0.6
        if accepted_m.any():
            assert np.mean(malware_verdict.predictions[accepted_m] == 1) > 0.6

    def test_length_mismatch_raises(self):
        frontend = DvfsHmdFrontend(RandomForestClassifier(n_estimators=3))
        with pytest.raises(ValueError):
            frontend.fit([], [0])

    def test_empty_traces_raise(self):
        frontend = DvfsHmdFrontend(RandomForestClassifier(n_estimators=3))
        with pytest.raises(ValueError):
            frontend.fit([], [])

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            DvfsHmdFrontend(RandomForestClassifier(), window_steps=1)


class TestHpcFrontend:
    def test_fit_and_analyze(self):
        specs = HPC_KNOWN_BENIGN[:3] + HPC_KNOWN_MALWARE[:3]
        labels = [s.label for s in specs]
        traces = _hpc_traces(specs, 600, seed=3)
        frontend = HpcHmdFrontend(
            RandomForestClassifier(n_estimators=10, random_state=0),
            threshold=0.5,
        ).fit(traces, labels)
        probe = _hpc_traces([HPC_KNOWN_BENIGN[0]], 200, seed=4)[0]
        verdict = frontend.analyze(probe)
        assert len(verdict.predictions) == probe.n_intervals

    def test_length_mismatch_raises(self):
        frontend = HpcHmdFrontend(RandomForestClassifier(n_estimators=3))
        with pytest.raises(ValueError):
            frontend.fit([], [1])
