"""Bitwise-equivalence suite for the batched ingest front.

The batched feature paths and the fused scaler→PCA front are pure
performance backends: they must never change results.

* ``DvfsFeatureExtractor.extract_windows`` (whole-tensor) vs.
  ``extract_windows_reference`` (per-window loop): **bitwise identical**
  across randomized trace lengths, channel counts, state cardinalities,
  constant signals and minimal (len ≤ 2) windows.
* ``HpcFeatureExtractor.extract_many`` vs. stacked per-trace
  ``extract``: bitwise identical.
* The fused affine front of ``TrustedHMD``/``UntrustedHMD`` vs. the
  two-pass scaler→PCA reference: ≤ 1e-9 per feature with PCA, bitwise
  without, and still valid after ``partial_refit``.
"""

import numpy as np
import pytest

from repro.hmd import DvfsFeatureExtractor, HpcFeatureExtractor
from repro.hmd.apps import DVFS_KNOWN_BENIGN
from repro.ml.ensemble import BaggingClassifier, RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.sim import (
    DvfsTrace,
    HpcSimulator,
    SocSimulator,
    WorkloadGenerator,
)
from repro.uncertainty.trust import TrustedHMD, UntrustedHMD
from tests.conftest import make_blobs


def random_dvfs_trace(
    rng,
    *,
    n_steps,
    n_channels=None,
    cardinalities=None,
    constant_channel=False,
):
    """A synthetic DVFS trace with arbitrary channel/state structure."""
    if cardinalities is None:
        n_channels = n_channels or int(rng.integers(1, 5))
        cardinalities = [int(rng.integers(1, 9)) for _ in range(n_channels)]
    states = np.column_stack(
        [rng.integers(0, k, n_steps) for k in cardinalities]
    )
    if constant_channel:
        states[:, 0] = 0
    return DvfsTrace(
        states=states,
        frequencies_mhz=tuple(
            tuple(100.0 * (i + 1) for i in range(k)) for k in cardinalities
        ),
        channel_names=tuple(f"ch{i}" for i in range(len(cardinalities))),
        temperature_c=rng.normal(40.0, 3.0, n_steps),
    )


class TestDvfsBatchedEquivalence:
    def test_simulated_trace_bitwise(self):
        spec = DVFS_KNOWN_BENIGN[0]
        activity = WorkloadGenerator(random_state=0).generate(spec, 1200)
        trace = SocSimulator(random_state=0).run(activity)
        extractor = DvfsFeatureExtractor()
        batched = extractor.extract_windows(trace, 240)
        reference = extractor.extract_windows_reference(trace, 240)
        assert np.array_equal(batched, reference)

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_traces_bitwise(self, seed):
        rng = np.random.default_rng(1000 + seed)
        extractor = DvfsFeatureExtractor()
        for _ in range(6):
            window_steps = int(rng.choice([2, 3, 5, 17, 96]))
            n_windows = int(rng.integers(1, 12))
            n_steps = window_steps * n_windows + int(rng.integers(0, window_steps))
            trace = random_dvfs_trace(
                rng, n_steps=n_steps, constant_channel=rng.random() < 0.25
            )
            batched = extractor.extract_windows(trace, window_steps)
            reference = extractor.extract_windows_reference(trace, window_steps)
            assert np.array_equal(batched, reference)
            assert batched.shape == (
                n_steps // window_steps,
                len(extractor.feature_names(trace)),
            )

    def test_minimal_windows_bitwise(self):
        """window_steps == 2: single-diff transitions, tiny spectra."""
        rng = np.random.default_rng(7)
        extractor = DvfsFeatureExtractor()
        trace = random_dvfs_trace(rng, n_steps=40, cardinalities=[2, 5, 3])
        batched = extractor.extract_windows(trace, 2)
        reference = extractor.extract_windows_reference(trace, 2)
        assert np.array_equal(batched, reference)

    def test_constant_trace_bitwise(self):
        """Zero-variance channels: autocorr/xcorr/spectral guards."""
        extractor = DvfsFeatureExtractor()
        trace = DvfsTrace(
            states=np.zeros((120, 2), dtype=int),
            frequencies_mhz=((100.0, 200.0), (100.0,)),
            channel_names=("cpu", "gpu"),
            temperature_c=np.full(120, 40.0),
        )
        batched = extractor.extract_windows(trace, 30)
        reference = extractor.extract_windows_reference(trace, 30)
        assert np.array_equal(batched, reference)
        names = extractor.feature_names(trace)
        lookup = dict(zip(names, batched[0]))
        assert lookup["cpu_residency_0"] == 1.0
        assert lookup["cpu_lag1_autocorr"] == 0.0
        assert lookup["xcorr_cpu_gpu"] == 0.0

    def test_single_state_channel(self):
        """Cardinality-1 channels exercise the max(n_states-1, 1) guard."""
        rng = np.random.default_rng(3)
        extractor = DvfsFeatureExtractor()
        trace = random_dvfs_trace(rng, n_steps=64, cardinalities=[1, 4])
        batched = extractor.extract_windows(trace, 8)
        reference = extractor.extract_windows_reference(trace, 8)
        assert np.array_equal(batched, reference)

    def test_extract_matches_single_window_batch(self):
        """extract() on one window == that row of the batched matrix."""
        rng = np.random.default_rng(11)
        extractor = DvfsFeatureExtractor()
        trace = random_dvfs_trace(rng, n_steps=96)
        batched = extractor.extract_windows(trace, 48)
        first = DvfsTrace(
            states=trace.states[:48],
            frequencies_mhz=trace.frequencies_mhz,
            channel_names=trace.channel_names,
            temperature_c=trace.temperature_c[:48],
        )
        assert np.array_equal(batched[0], extractor.extract(first))

    def test_validation_matches_reference(self):
        rng = np.random.default_rng(0)
        extractor = DvfsFeatureExtractor()
        trace = random_dvfs_trace(rng, n_steps=10)
        with pytest.raises(ValueError):
            extractor.extract_windows(trace, 1)
        with pytest.raises(ValueError):
            extractor.extract_windows(trace, 11)

    def test_out_of_range_state_fails_loudly(self):
        """States beyond the frequency table must not corrupt bins."""
        extractor = DvfsFeatureExtractor()
        trace = DvfsTrace(
            states=np.full((8, 1), 2, dtype=int),  # only states 0-1 defined
            frequencies_mhz=((100.0, 200.0),),
            channel_names=("cpu",),
            temperature_c=np.full(8, 40.0),
        )
        with pytest.raises(ValueError, match="frequency states"):
            extractor.extract_windows(trace, 4)


class TestHpcBulkEquivalence:
    def _traces(self, n_traces=3, n_steps=200):
        spec = DVFS_KNOWN_BENIGN[0]
        traces = []
        for s in range(n_traces):
            activity = WorkloadGenerator(random_state=s).generate(spec, n_steps)
            traces.append(HpcSimulator(random_state=s).run(activity))
        return traces

    def test_extract_many_bitwise(self):
        extractor = HpcFeatureExtractor()
        traces = self._traces()
        bulk = extractor.extract_many(traces)
        stacked = np.vstack([extractor.extract(t) for t in traces])
        assert np.array_equal(bulk, stacked)

    def test_extract_many_single_trace(self):
        extractor = HpcFeatureExtractor()
        (trace,) = self._traces(n_traces=1)
        assert np.array_equal(
            extractor.extract_many([trace]), extractor.extract(trace)
        )

    def test_extract_many_heterogeneous_dt(self):
        """Per-trace sampling periods must land on the right rows."""
        import dataclasses

        extractor = HpcFeatureExtractor()
        a, b, c = self._traces(n_traces=3)
        b = dataclasses.replace(b, dt=b.dt * 4)
        bulk = extractor.extract_many([a, b, c])
        stacked = np.vstack([extractor.extract(t) for t in (a, b, c)])
        assert np.array_equal(bulk, stacked)

    def test_extract_many_validation(self):
        extractor = HpcFeatureExtractor()
        with pytest.raises(ValueError):
            extractor.extract_many([])
        a, b = self._traces(n_traces=2)
        import dataclasses

        mangled = dataclasses.replace(
            b, counter_names=tuple(reversed(b.counter_names))
        )
        with pytest.raises(ValueError):
            extractor.extract_many([a, mangled])


class TestFusedAffineFront:
    def _data(self, seed=5):
        return make_blobs(n_per_class=100, separation=3.0, seed=seed)

    def _two_pass(self, hmd, X):
        Z = hmd.scaler_.transform(np.asarray(X, dtype=float))
        if hmd.pca_ is not None:
            Z = hmd.pca_.transform(Z)
        return Z

    def test_without_pca_bitwise(self):
        X, y = self._data()
        hmd = TrustedHMD(
            RandomForestClassifier(n_estimators=10, random_state=0)
        ).fit(X, y)
        assert np.array_equal(hmd._transform(X), self._two_pass(hmd, X))

    def test_with_pca_close(self):
        X, y = self._data()
        hmd = TrustedHMD(
            RandomForestClassifier(n_estimators=10, random_state=0),
            n_components=3,
        ).fit(X, y)
        fused = hmd._transform(X)
        assert fused.shape[1] == 3
        np.testing.assert_allclose(
            fused, self._two_pass(hmd, X), rtol=0.0, atol=1e-9
        )

    def test_untrusted_with_pca_close(self):
        from repro.ml.linear import LogisticRegression

        X, y = self._data()
        hmd = UntrustedHMD(LogisticRegression(), n_components=3).fit(X, y)
        np.testing.assert_allclose(
            hmd._transform(X), self._two_pass(hmd, X), rtol=0.0, atol=1e-9
        )

    def test_front_survives_partial_refit(self):
        """partial_refit keeps the frozen front valid (and rebuilt)."""
        X, y = self._data()
        hmd = TrustedHMD(
            BaggingClassifier(
                DecisionTreeClassifier(max_depth=4, grower="hist"),
                n_estimators=8,
                random_state=0,
            ),
            n_components=3,
        ).fit(X, y)
        before = hmd._transform(X)
        rng = np.random.default_rng(0)
        X_new = X[:20] + rng.normal(0, 0.05, (20, X.shape[1]))
        hmd.partial_refit(X_new, np.full(20, 1))
        after = hmd._transform(X)
        # Scaler and PCA are frozen across partial refits, so the
        # rebuilt fused front must reproduce the pre-refit transform.
        assert np.array_equal(before, after)
        np.testing.assert_allclose(
            after, self._two_pass(hmd, X), rtol=0.0, atol=1e-9
        )

    def test_legacy_fitted_state_composes_lazily(self):
        """A fitted HMD without the cached front rebuilds it on demand."""
        X, y = self._data()
        hmd = TrustedHMD(
            RandomForestClassifier(n_estimators=5, random_state=0),
            n_components=2,
        ).fit(X, y)
        expected = hmd._transform(X)
        del hmd._front_weight_, hmd._front_bias_
        np.testing.assert_array_equal(hmd._transform(X), expected)

    def test_analyze_verdicts_unchanged_by_fusion(self):
        """Fused-front verdicts match a manual two-pass analyze."""
        X, y = self._data()
        hmd = TrustedHMD(
            RandomForestClassifier(n_estimators=20, random_state=0),
            threshold=0.4,
            n_components=4,
        ).fit(X, y)
        verdict = hmd.analyze(X)
        labels, entropy = hmd.estimator_.predict_with_uncertainty(
            self._two_pass(hmd, X)
        )
        assert np.array_equal(verdict.predictions, labels)
        np.testing.assert_allclose(
            verdict.entropy, entropy, rtol=0.0, atol=1e-9
        )
