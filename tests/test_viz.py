"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.viz import ascii_boxplot, ascii_histogram, ascii_line_chart


class TestAsciiBoxplot:
    def test_renders_all_groups(self):
        rng = np.random.default_rng(0)
        text = ascii_boxplot(
            {"known": rng.random(50) * 0.2, "unknown": 0.5 + rng.random(50) * 0.4}
        )
        assert "known" in text and "unknown" in text

    def test_median_marker_present(self):
        text = ascii_boxplot({"g": np.array([0.0, 0.5, 1.0])})
        assert ":" in text

    def test_shifted_groups_render_apart(self):
        text = ascii_boxplot(
            {"lo": np.full(20, 0.1), "hi": np.full(20, 0.9)}, width=40
        )
        lines = text.splitlines()
        lo_col = lines[0].index(":")
        hi_col = lines[1].index(":")
        assert hi_col > lo_col + 10

    def test_shared_axis_limits(self):
        text = ascii_boxplot({"g": np.array([0.2, 0.4])}, lo=0.0, hi=1.0)
        assert "0.000" in text and "1.000" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_boxplot({})
        with pytest.raises(ValueError):
            ascii_boxplot({"g": np.array([])})
        with pytest.raises(ValueError):
            ascii_boxplot({"g": np.array([1.0])}, width=5)


class TestAsciiLineChart:
    def test_marker_per_series(self):
        x = np.arange(10.0)
        text = ascii_line_chart({"a": (x, x), "b": (x, x[::-1])})
        assert "*=a" in text and "+=b" in text
        assert "*" in text and "+" in text

    def test_axis_labels(self):
        x = np.linspace(0, 5, 20)
        text = ascii_line_chart({"s": (x, np.sin(x))})
        assert "0.000" in text and "5.000" in text

    def test_monotone_series_renders_diagonal(self):
        x = np.arange(8.0)
        text = ascii_line_chart({"up": (x, x)}, width=24, height=8)
        lines = text.splitlines()
        first_marker_cols = [
            line.find("*") for line in lines if "*" in line and "=" not in line
        ]
        # Higher rows (earlier lines) hold larger y -> larger x columns.
        assert first_marker_cols == sorted(first_marker_cols, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_line_chart({})
        with pytest.raises(ValueError):
            ascii_line_chart({"a": (np.arange(3.0), np.arange(2.0))})
        with pytest.raises(ValueError):
            ascii_line_chart({"a": (np.arange(3.0), np.arange(3.0))}, width=4)


class TestAsciiHistogram:
    def test_counts_reported(self):
        text = ascii_histogram(np.zeros(10), n_bins=2)
        assert "10" in text

    def test_peak_bar_full_width(self):
        rng = np.random.default_rng(1)
        text = ascii_histogram(rng.normal(size=500), n_bins=8, width=30)
        assert "#" * 30 in text

    def test_label_included(self):
        text = ascii_histogram(np.arange(10.0), label="entropies")
        assert text.startswith("entropies")

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_histogram(np.array([]))
        with pytest.raises(ValueError):
            ascii_histogram(np.arange(5.0), n_bins=1)
