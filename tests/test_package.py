"""Package hygiene: exports resolve, public API is documented.

These tests catch wiring regressions (an ``__all__`` entry that no
longer exists) and documentation gaps (public callables without
docstrings) across the whole library.
"""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.data",
    "repro.experiments",
    "repro.hmd",
    "repro.ml",
    "repro.ml.metrics",
    "repro.sim",
    "repro.uncertainty",
    "repro.viz",
]

MODULES = [
    "repro.data.builders",
    "repro.data.dataset",
    "repro.experiments.ablations",
    "repro.experiments.claims",
    "repro.experiments.common",
    "repro.experiments.extension_em",
    "repro.hmd.apps",
    "repro.hmd.features",
    "repro.hmd.pipeline",
    "repro.ml.base",
    "repro.ml.boosting",
    "repro.ml.calibration",
    "repro.ml.cluster",
    "repro.ml.decomposition",
    "repro.ml.ensemble",
    "repro.ml.feature_selection",
    "repro.ml.linear",
    "repro.ml.manifold",
    "repro.ml.model_selection",
    "repro.ml.naive_bayes",
    "repro.ml.neighbors",
    "repro.ml.pipeline",
    "repro.ml.preprocessing",
    "repro.ml.svm",
    "repro.ml.tree",
    "repro.ml.validation",
    "repro.sim.cpu",
    "repro.sim.em",
    "repro.sim.power",
    "repro.sim.trace",
    "repro.sim.workloads",
    "repro.uncertainty.decomposition",
    "repro.uncertainty.drift",
    "repro.uncertainty.entropy",
    "repro.uncertainty.estimator",
    "repro.uncertainty.online",
    "repro.uncertainty.rejection",
    "repro.uncertainty.reliability",
    "repro.uncertainty.thresholds",
    "repro.uncertainty.trust",
]


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", MODULES)
def test_public_callables_documented(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"
            if inspect.isclass(obj):
                for method_name, method in inspect.getmembers(
                    obj, inspect.isfunction
                ):
                    if method_name.startswith("_"):
                        continue
                    if method.__qualname__.split(".")[0] != obj.__name__:
                        continue  # inherited
                    assert method.__doc__, (
                        f"{name}.{symbol}.{method_name} lacks a docstring"
                    )


def test_version_exposed():
    assert repro.__version__
