"""Shared fixtures: synthetic classification blobs and small datasets.

Dataset builders memoise per (seed, scale), so the session-scoped
fixtures here cost one build for the whole test run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_dvfs_dataset, build_hpc_dataset
from repro.experiments import ExperimentConfig, ExperimentContext


def make_blobs(
    n_per_class: int = 120,
    n_features: int = 6,
    *,
    separation: float = 3.0,
    seed: int = 0,
):
    """Two Gaussian blobs, labels 0/1, shuffled."""
    rng = np.random.default_rng(seed)
    X0 = rng.normal(loc=-separation / 2, size=(n_per_class, n_features))
    X1 = rng.normal(loc=+separation / 2, size=(n_per_class, n_features))
    X = np.vstack([X0, X1])
    y = np.array([0] * n_per_class + [1] * n_per_class)
    order = rng.permutation(len(y))
    return X[order], y[order]


@pytest.fixture(scope="session")
def blobs():
    """Well-separated binary blobs (train-quality)."""
    return make_blobs(seed=0)


@pytest.fixture(scope="session")
def overlapping_blobs():
    """Heavily overlapping binary blobs (aleatoric-uncertainty regime)."""
    return make_blobs(separation=0.7, seed=1)


@pytest.fixture(scope="session")
def blobs_split(blobs):
    """(X_train, X_test, y_train, y_test) from the separated blobs."""
    X, y = blobs
    n_train = int(0.75 * len(y))
    return X[:n_train], X[n_train:], y[:n_train], y[n_train:]


@pytest.fixture(scope="session")
def dvfs_small():
    """DVFS dataset at 10% scale (210/70/28 samples)."""
    return build_dvfs_dataset(seed=7, scale=0.1)


@pytest.fixture(scope="session")
def hpc_small():
    """HPC dataset at 2% scale (~892/127/255 samples)."""
    return build_hpc_dataset(seed=7, scale=0.02)


@pytest.fixture(scope="session")
def small_context():
    """Experiment context at smoke scale, shared across runner tests."""
    config = ExperimentConfig(dvfs_scale=0.15, hpc_scale=0.03, n_estimators=25)
    return ExperimentContext(config)
