"""Pickle and snapshot round-trip tests for deployment persistence.

A deployed HMD must survive serialisation: the operator trains once,
ships the model to devices, and loads it there.  Every public estimator
(and the full TrustedHMD pipeline) must pickle and produce identical
predictions after loading.  The fleet layer adds checkpoint/restore of
*live monitoring state* — queues, device states, forensic backlogs —
via ``snapshot()``/``restore()`` helpers, covered here as well.
"""

import pickle

import numpy as np
import pytest

from repro.fleet import DeviceState, FleetMonitor, FleetQueue, RingBuffer
from repro.fleet.queueing import WindowRequest
from repro.ml import (
    PCA,
    AdaBoostClassifier,
    BaggingClassifier,
    DecisionTreeClassifier,
    ExtraTreesClassifier,
    GaussianNB,
    KMeans,
    KNeighborsClassifier,
    LinearSVC,
    LogisticRegression,
    Pipeline,
    RandomForestClassifier,
    SVC,
    StandardScaler,
)
from repro.uncertainty import TrustedHMD
from repro.uncertainty.online import (
    FlaggedSample,
    ForensicQueue,
    MonitorStats,
)
from tests.conftest import make_blobs


@pytest.fixture(scope="module")
def data():
    return make_blobs(n_per_class=80, seed=90)


ESTIMATORS = [
    DecisionTreeClassifier(max_depth=4, random_state=0),
    RandomForestClassifier(n_estimators=8, random_state=0),
    ExtraTreesClassifier(n_estimators=6, random_state=0),
    BaggingClassifier(n_estimators=5, random_state=0),
    AdaBoostClassifier(n_estimators=6, random_state=0),
    LogisticRegression(),
    LinearSVC(),
    SVC(max_iter=30, random_state=0),
    GaussianNB(),
    KNeighborsClassifier(n_neighbors=3),
]


@pytest.mark.parametrize(
    "estimator", ESTIMATORS, ids=[type(e).__name__ for e in ESTIMATORS]
)
def test_classifier_pickle_roundtrip(estimator, data):
    X, y = data
    estimator.fit(X, y)
    loaded = pickle.loads(pickle.dumps(estimator))
    np.testing.assert_array_equal(loaded.predict(X), estimator.predict(X))


def test_transformer_pickle_roundtrip(data):
    X, _ = data
    for transformer in (StandardScaler().fit(X), PCA(n_components=2).fit(X)):
        loaded = pickle.loads(pickle.dumps(transformer))
        np.testing.assert_allclose(loaded.transform(X), transformer.transform(X))


def test_kmeans_pickle_roundtrip(data):
    X, _ = data
    km = KMeans(n_clusters=2, random_state=0).fit(X)
    loaded = pickle.loads(pickle.dumps(km))
    np.testing.assert_array_equal(loaded.predict(X), km.predict(X))


def test_pipeline_pickle_roundtrip(data):
    X, y = data
    pipe = Pipeline(
        [("scale", StandardScaler()), ("clf", LogisticRegression())]
    ).fit(X, y)
    loaded = pickle.loads(pickle.dumps(pipe))
    np.testing.assert_array_equal(loaded.predict(X), pipe.predict(X))


def test_trusted_hmd_pickle_roundtrip(data):
    X, y = data
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=10, random_state=0), threshold=0.4
    ).fit(X, y)
    loaded = pickle.loads(pickle.dumps(hmd))
    original = hmd.analyze(X)
    restored = loaded.analyze(X)
    np.testing.assert_array_equal(restored.predictions, original.predictions)
    np.testing.assert_allclose(restored.entropy, original.entropy)
    np.testing.assert_array_equal(restored.accepted, original.accepted)


# -- fleet state snapshot()/restore() round-trips ---------------------------


class TestRingBufferSnapshot:
    def test_roundtrip_exact(self):
        buffer = RingBuffer(8)
        buffer.extend(np.arange(13.0))  # wrapped: rotation matters
        restored = RingBuffer.restore(
            pickle.loads(pickle.dumps(buffer.snapshot()))
        )
        np.testing.assert_array_equal(restored.values(), buffer.values())
        assert restored.mean() == buffer.mean()  # bit-exact, not approx
        restored.push(99.0)
        buffer.push(99.0)
        np.testing.assert_array_equal(restored.values(), buffer.values())

    def test_partial_fill(self):
        buffer = RingBuffer(16)
        buffer.extend([1.0, 2.0, 3.0])
        restored = RingBuffer.restore(buffer.snapshot())
        assert len(restored) == 3
        np.testing.assert_array_equal(restored.values(), [1.0, 2.0, 3.0])


class TestMonitorStatsSnapshot:
    def test_roundtrip(self):
        stats = MonitorStats()
        stats.record_verdicts(
            np.array([0, 1, 1]),
            np.array([0.1, 0.9, 0.2]),
            np.array([True, False, True]),
        )
        restored = MonitorStats.restore(
            pickle.loads(pickle.dumps(stats.snapshot()))
        )
        assert restored == stats


class TestDeviceStateSnapshot:
    def test_roundtrip(self):
        state = DeviceState(device_id="dev-7", cohort="zero_day")
        state.record(
            np.array([1, 0, 1]),
            np.array([0.3, 0.1, 0.8]),
            np.array([True, True, False]),
            last_step=42,
        )
        restored = DeviceState.restore(
            pickle.loads(pickle.dumps(state.snapshot()))
        )
        assert restored.device_id == "dev-7"
        assert restored.cohort == "zero_day"
        assert restored.last_step == 42
        assert restored.stats == state.stats
        assert restored.recent_entropy == state.recent_entropy
        np.testing.assert_array_equal(
            restored.entropy_recent.values(), state.entropy_recent.values()
        )


class TestForensicQueueSnapshot:
    def test_roundtrip(self):
        queue = ForensicQueue(maxlen=50)
        for step in range(5):
            queue.push(
                FlaggedSample(
                    features=np.full(3, float(step)),
                    prediction=step % 2,
                    entropy=0.5 + step,
                    step=step,
                )
            )
        queue.drain(2)  # partial consumption before the checkpoint
        restored = ForensicQueue.restore(
            pickle.loads(pickle.dumps(queue.snapshot())),
            maxlen=queue.maxlen,
            total_flagged=queue.total_flagged,
        )
        assert len(restored) == len(queue)
        assert restored.total_flagged == queue.total_flagged
        assert restored.maxlen == queue.maxlen
        for a, b in zip(restored.snapshot(), queue.snapshot()):
            assert (a.prediction, a.entropy, a.step) == (
                b.prediction,
                b.entropy,
                b.step,
            )

    def test_restore_default_counter(self):
        restored = ForensicQueue.restore(
            [
                FlaggedSample(
                    features=np.zeros(2), prediction=0, entropy=0.1, step=1
                )
            ]
        )
        assert restored.total_flagged == 1


class TestFleetQueueSnapshot:
    def test_roundtrip_preserves_order_and_sheds(self):
        from repro.fleet import BackpressurePolicy

        queue = FleetQueue(
            BackpressurePolicy(max_pending=6, shed="drop_oldest")
        )
        for seq in range(4):
            queue.submit(WindowRequest("a", np.full(2, float(seq)), seq))
        queue.submit_block(
            "b", np.arange(6.0).reshape(3, 2), np.arange(3)
        )
        queue.submit(WindowRequest("c", np.ones(2), 0))  # sheds a's oldest
        restored = FleetQueue.restore(
            pickle.loads(pickle.dumps(queue.snapshot()))
        )
        assert len(restored) == len(queue)
        assert restored.shed_by_device == queue.shed_by_device
        original = queue.take(100)
        copy = restored.take(100)
        assert copy.device_ids.tolist() == original.device_ids.tolist()
        assert copy.seqs.tolist() == original.seqs.tolist()
        np.testing.assert_array_equal(copy.features, original.features)


def test_fleet_monitor_snapshot_restores_against_pickled_hmd(data):
    """The full persistence story: pickle the model, snapshot the state."""
    X, y = data
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=8, random_state=0), threshold=0.4
    ).fit(X, y)
    monitor = FleetMonitor(hmd, batch_size=16)
    for i in range(40):
        monitor.submit(f"dev-{i % 4}", X[i])
    monitor.drain(max_batches=1)  # leave a backlog mid-stream

    model_blob = pickle.dumps(hmd)
    state_blob = pickle.dumps(monitor.snapshot())
    restored = FleetMonitor.restore(
        pickle.loads(model_blob), pickle.loads(state_blob)
    )
    original = monitor.drain()
    copy = restored.drain()
    assert len(copy) == len(original)
    for a, b in zip(copy, original):
        np.testing.assert_array_equal(a.predictions, b.predictions)
        np.testing.assert_array_equal(a.entropy, b.entropy)
        np.testing.assert_array_equal(a.accepted, b.accepted)
