"""Pickle round-trip tests for deployment persistence.

A deployed HMD must survive serialisation: the operator trains once,
ships the model to devices, and loads it there.  Every public estimator
(and the full TrustedHMD pipeline) must pickle and produce identical
predictions after loading.
"""

import pickle

import numpy as np
import pytest

from repro.ml import (
    PCA,
    AdaBoostClassifier,
    BaggingClassifier,
    DecisionTreeClassifier,
    ExtraTreesClassifier,
    GaussianNB,
    KMeans,
    KNeighborsClassifier,
    LinearSVC,
    LogisticRegression,
    Pipeline,
    RandomForestClassifier,
    SVC,
    StandardScaler,
)
from repro.uncertainty import TrustedHMD
from tests.conftest import make_blobs


@pytest.fixture(scope="module")
def data():
    return make_blobs(n_per_class=80, seed=90)


ESTIMATORS = [
    DecisionTreeClassifier(max_depth=4, random_state=0),
    RandomForestClassifier(n_estimators=8, random_state=0),
    ExtraTreesClassifier(n_estimators=6, random_state=0),
    BaggingClassifier(n_estimators=5, random_state=0),
    AdaBoostClassifier(n_estimators=6, random_state=0),
    LogisticRegression(),
    LinearSVC(),
    SVC(max_iter=30, random_state=0),
    GaussianNB(),
    KNeighborsClassifier(n_neighbors=3),
]


@pytest.mark.parametrize(
    "estimator", ESTIMATORS, ids=[type(e).__name__ for e in ESTIMATORS]
)
def test_classifier_pickle_roundtrip(estimator, data):
    X, y = data
    estimator.fit(X, y)
    loaded = pickle.loads(pickle.dumps(estimator))
    np.testing.assert_array_equal(loaded.predict(X), estimator.predict(X))


def test_transformer_pickle_roundtrip(data):
    X, _ = data
    for transformer in (StandardScaler().fit(X), PCA(n_components=2).fit(X)):
        loaded = pickle.loads(pickle.dumps(transformer))
        np.testing.assert_allclose(loaded.transform(X), transformer.transform(X))


def test_kmeans_pickle_roundtrip(data):
    X, _ = data
    km = KMeans(n_clusters=2, random_state=0).fit(X)
    loaded = pickle.loads(pickle.dumps(km))
    np.testing.assert_array_equal(loaded.predict(X), km.predict(X))


def test_pipeline_pickle_roundtrip(data):
    X, y = data
    pipe = Pipeline(
        [("scale", StandardScaler()), ("clf", LogisticRegression())]
    ).fit(X, y)
    loaded = pickle.loads(pickle.dumps(pipe))
    np.testing.assert_array_equal(loaded.predict(X), pipe.predict(X))


def test_trusted_hmd_pickle_roundtrip(data):
    X, y = data
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=10, random_state=0), threshold=0.4
    ).fit(X, y)
    loaded = pickle.loads(pickle.dumps(hmd))
    original = hmd.analyze(X)
    restored = loaded.analyze(X)
    np.testing.assert_array_equal(restored.predictions, original.predictions)
    np.testing.assert_allclose(restored.entropy, original.entropy)
    np.testing.assert_array_equal(restored.accepted, original.accepted)
