"""Tests for the batched fleet inference engine."""

import numpy as np
import pytest

from repro.fleet import (
    BackpressurePolicy,
    FleetFlaggedSample,
    FleetMonitor,
)
from repro.ml import RandomForestClassifier
from repro.uncertainty import OnlineMonitor, TrustedHMD
from tests.conftest import make_blobs


@pytest.fixture(scope="module")
def fitted_hmd():
    X, y = make_blobs(n_per_class=120, separation=4.0, seed=70)
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=20, random_state=0),
        threshold=0.4,
    ).fit(X, y)
    return X, y, hmd


def _arrivals(X, n_devices=6, rounds=10, seed=1):
    """Round-robin (device_id, window) arrival list from sample rows."""
    rng = np.random.default_rng(seed)
    events = []
    for _ in range(rounds):
        for d in range(n_devices):
            events.append((f"dev-{d}", X[rng.integers(len(X))]))
    return events


class TestFleetMonitor:
    def test_requires_fitted_hmd(self):
        with pytest.raises(ValueError):
            FleetMonitor(TrustedHMD(RandomForestClassifier(n_estimators=3)))

    def test_batched_equals_sequential(self, fitted_hmd):
        """Core correctness: batch composition never changes verdicts."""
        X, y, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=6, rounds=10)

        sequential = OnlineMonitor(hmd)
        seq_verdicts = [(d, sequential.observe(w)) for d, w in arrivals]

        fleet = FleetMonitor(hmd, batch_size=17)  # odd size: spans devices
        for device_id, window in arrivals:
            fleet.submit(device_id, window)
        batches = fleet.drain()

        keyed = {}
        for batch in batches:
            for j, device_id in enumerate(batch.device_ids):
                keyed[(device_id, int(batch.seqs[j]))] = (
                    batch.predictions[j],
                    batch.entropy[j],
                    bool(batch.accepted[j]),
                )
        assert len(keyed) == len(arrivals)

        counter = {}
        for device_id, verdict in seq_verdicts:
            seq = counter.get(device_id, 0)
            counter[device_id] = seq + 1
            pred, entropy, accepted = keyed[(device_id, seq)]
            assert pred == verdict.predictions[0]
            assert entropy == verdict.entropy[0]  # bitwise
            assert accepted == bool(verdict.accepted[0])

        assert fleet.stats.n_seen == sequential.stats.n_seen
        assert fleet.stats.n_flagged == sequential.stats.n_flagged
        assert fleet.stats.n_malware_alerts == sequential.stats.n_malware_alerts
        assert fleet.stats.entropy_sum == pytest.approx(
            sequential.stats.entropy_sum
        )

    def test_batch_sizes_partition_queue(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        fleet = FleetMonitor(hmd, batch_size=8)
        fleet.submit_many("dev-0", X[:20])
        assert fleet.pending == 20
        results = fleet.drain()
        assert [len(r) for r in results] == [8, 8, 4]
        assert fleet.pending == 0
        assert fleet.n_batches == 3

    def test_flagged_samples_are_device_tagged(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        fleet = FleetMonitor(hmd, batch_size=16)
        # The inter-class saddle point is maximally uncertain.
        contested = np.zeros((12, X.shape[1]))
        fleet.submit_many("dev-sus", contested)
        fleet.drain()
        assert len(fleet.forensics) > 0
        flagged = fleet.forensics.drain()
        assert all(isinstance(s, FleetFlaggedSample) for s in flagged)
        assert all(s.device_id == "dev-sus" for s in flagged)
        seqs = [s.seq for s in flagged]
        assert seqs == sorted(seqs)

    def test_backpressure_sheds_and_reports(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        fleet = FleetMonitor(
            hmd,
            batch_size=8,
            policy=BackpressurePolicy(max_pending=10, shed="drop_oldest"),
        )
        admitted = fleet.submit_many("dev-0", X[:25])
        # drop_oldest admits every new window but evicts stale ones.
        assert admitted == 25
        assert fleet.pending == 10
        fleet.drain()
        report = fleet.report()
        assert report.n_shed == 15
        assert report.n_seen == 10
        (shed_dev,) = report.shed_devices()
        assert shed_dev.device_id == "dev-0"
        assert shed_dev.n_shed == 15

    def test_per_device_isolation_under_load(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        fleet = FleetMonitor(
            hmd,
            batch_size=64,
            policy=BackpressurePolicy(max_pending=100, max_pending_per_device=5),
        )
        fleet.submit_many("noisy", X[:50])
        fleet.submit_many("calm", X[:3])
        assert fleet.queue.pending("noisy") == 5
        assert fleet.queue.pending("calm") == 3
        fleet.drain()
        report = fleet.report()
        by_id = {d.device_id: d for d in report.devices}
        assert by_id["noisy"].n_seen == 5
        assert by_id["noisy"].n_shed == 45
        assert by_id["calm"].n_seen == 3
        assert by_id["calm"].n_shed == 0

    def test_drift_monitor_fed_by_batches(self, fitted_hmd):
        X, y, hmd = fitted_hmd
        reference = hmd.predictive_entropy(X)
        fleet = FleetMonitor(hmd, batch_size=16, drift_reference=reference)
        fleet.submit_many("dev-0", X[:32])
        fleet.drain()
        report = fleet.report()
        assert report.drift_status in ("stable", "warning", "drift")

    def test_report_aggregates(self, fitted_hmd):
        X, y, hmd = fitted_hmd
        fleet = FleetMonitor(hmd, batch_size=32)
        fleet.register("dev-mal", cohort="malware")
        fleet.submit_many("dev-mal", X[y == 1][:15])
        fleet.register("dev-ben", cohort="benign")
        fleet.submit_many("dev-ben", X[y == 0][:15])
        fleet.drain()
        report = fleet.report()
        assert report.n_devices == 2
        assert report.n_seen == 30
        by_id = {d.device_id: d for d in report.devices}
        assert by_id["dev-mal"].cohort == "malware"
        assert by_id["dev-mal"].alert_rate > by_id["dev-ben"].alert_rate
        infected = report.infected_devices(min_alert_rate=0.5, min_seen=5)
        assert [d.device_id for d in infected] == ["dev-mal"]
        text = report.as_text()
        assert "dev-mal" in text and "Fleet report" in text

    def test_bulk_and_rowwise_submission_equivalent(self, fitted_hmd):
        """submit_many produces the same verdicts as per-row submits."""
        X, _, hmd = fitted_hmd
        bulk = FleetMonitor(hmd, batch_size=16)
        rowwise = FleetMonitor(hmd, batch_size=16)
        for d in range(3):
            block = X[d * 15 : (d + 1) * 15]
            bulk.submit_many(f"dev-{d}", block)
            for row in block:
                rowwise.submit(f"dev-{d}", row)
        bulk_batches = bulk.drain()
        row_batches = rowwise.drain()
        assert len(bulk_batches) == len(row_batches)
        for b, r in zip(bulk_batches, row_batches):
            assert b.device_ids.tolist() == list(r.device_ids)
            assert np.array_equal(b.seqs, r.seqs)
            assert np.array_equal(b.predictions, r.predictions)
            assert np.array_equal(b.entropy, r.entropy)  # bitwise
            assert np.array_equal(b.accepted, r.accepted)
        assert bulk.stats.n_flagged == rowwise.stats.n_flagged

    def test_for_device_vectorized_mask(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        fleet = FleetMonitor(hmd, batch_size=32)
        fleet.submit_many("a", X[:5])
        fleet.submit_many("b", X[5:8])
        (batch,) = fleet.drain()
        view = batch.for_device("a")
        assert view["seqs"].tolist() == [0, 1, 2, 3, 4]
        assert len(view["predictions"]) == 5
        assert batch.for_device("missing")["seqs"].size == 0

    def test_ragged_block_rejected_at_ingress(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        fleet = FleetMonitor(hmd, batch_size=4)
        with pytest.raises(ValueError, match="features"):
            fleet.submit_many("dev-0", np.zeros((3, X.shape[1] + 1)))
        assert fleet.pending == 0

    def test_empty_queue_returns_none(self, fitted_hmd):
        _, _, hmd = fitted_hmd
        fleet = FleetMonitor(hmd)
        assert fleet.process_batch() is None
        assert fleet.drain() == []

    def test_ragged_window_rejected_at_ingress(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        fleet = FleetMonitor(hmd, batch_size=4)
        fleet.submit("dev-0", X[0])
        with pytest.raises(ValueError, match="features"):
            fleet.submit("dev-0", np.zeros(X.shape[1] + 2))
        # The well-formed window already queued still processes fine.
        assert len(fleet.drain()) == 1

    def test_equivalence_helper_detects_mismatch(self, fitted_hmd):
        from repro.fleet import batched_verdicts_equal_sequential

        X, _, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=3, rounds=4)
        sequential = OnlineMonitor(hmd)
        seq_verdicts = [(d, sequential.observe(w)) for d, w in arrivals]
        fleet = FleetMonitor(hmd, batch_size=5)
        for device_id, window in arrivals:
            fleet.submit(device_id, window)
        batches = fleet.drain()
        assert batched_verdicts_equal_sequential(batches, seq_verdicts)
        # Dropping one sequential verdict must break equivalence.
        assert not batched_verdicts_equal_sequential(batches, seq_verdicts[:-1])
