"""Tests for the fleet's telemetry integration.

The contract the telemetry plane must keep: instrumentation observes
the stream without touching it (verdicts bitwise identical with
telemetry on and off), per-component registries fold associatively
through ``merge_reports`` even when only some shards report them, and
the rendered report stays aligned whatever the device ids look like.
"""

import numpy as np
import pytest

from repro.fleet import (
    BackpressurePolicy,
    FleetMonitor,
    FleetRetrainer,
    ShardedFleetMonitor,
    WorkerShardedFleetMonitor,
)
from repro.fleet.engine import batch_verdict_key
from repro.fleet.report import (
    DeviceReport,
    FleetReport,
    device_report_key,
    merge_reports,
)
from repro.fleet.resilience import ShardHealth, ShardHealthReport
from repro.ml import RandomForestClassifier
from repro.obs import MetricsRegistry, TraceContext, TraceSampler
from repro.uncertainty import TrustedHMD
from tests.conftest import make_blobs

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def fitted_hmd():
    X, y = make_blobs(n_per_class=120, separation=4.0, seed=70)
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=20, random_state=0),
        threshold=0.4,
    ).fit(X, y)
    return X, hmd


def _arrivals(X, n_devices=8, rounds=16, seed=1):
    rng = np.random.default_rng(seed)
    return [
        (f"dev-{d:03d}", X[rng.integers(len(X))])
        for _ in range(rounds)
        for d in range(n_devices)
    ]


def _drive(monitor, arrivals):
    for device_id, _ in arrivals:
        monitor.register(device_id)
    for device_id, window in arrivals:
        monitor.submit(device_id, window)
    return monitor.drain()


class TestTelemetryNeutrality:
    def test_verdicts_identical_with_telemetry_on_and_off(self, fitted_hmd):
        X, hmd = fitted_hmd
        arrivals = _arrivals(X)
        plain = ShardedFleetMonitor(hmd, n_shards=3, batch_size=32)
        plain_batches = _drive(plain, arrivals)
        instrumented = ShardedFleetMonitor(
            hmd,
            n_shards=3,
            batch_size=32,
            telemetry=True,
            tracer=TraceContext(TraceSampler(rate=4, seed=0)),
        )
        instr_batches = _drive(instrumented, arrivals)
        assert batch_verdict_key(instr_batches) == batch_verdict_key(
            plain_batches
        )
        assert device_report_key(instrumented.report()) == device_report_key(
            plain.report()
        )

    def test_counters_account_for_the_traffic(self, fitted_hmd):
        X, hmd = fitted_hmd
        arrivals = _arrivals(X)
        monitor = ShardedFleetMonitor(
            hmd, n_shards=2, batch_size=32, telemetry=True
        )
        _drive(monitor, arrivals)
        report = monitor.report()
        counters = report.telemetry["counters"]
        assert counters["fleet_windows_admitted_total"] == len(arrivals)
        assert counters["fleet_windows_drained_total"] == len(arrivals)
        assert counters["fleet_windows_flagged_total"] == monitor.stats.n_flagged
        assert counters["fleet_scatter_rows_total"] == len(arrivals)
        assert report.telemetry["gauges"]["fleet_queue_depth"] == 0
        verdict = report.telemetry["histograms"]["fleet_verdict_seconds"]
        assert verdict["count"] == counters["fleet_batches_total"] > 0

    def test_shed_windows_counted(self, fitted_hmd):
        X, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=4, rounds=12)
        monitor = FleetMonitor(
            hmd,
            batch_size=16,
            policy=BackpressurePolicy(max_pending=8, shed="drop_newest"),
            telemetry=True,
        )
        _drive(monitor, arrivals)
        counters = monitor.metrics.snapshot()["counters"]
        assert counters["fleet_windows_shed_total"] == monitor.queue.total_shed > 0
        assert (
            counters["fleet_windows_admitted_total"]
            + counters["fleet_windows_shed_total"]
            == len(arrivals)
        )

    def test_disabled_monitor_reports_no_telemetry(self, fitted_hmd):
        X, hmd = fitted_hmd
        monitor = ShardedFleetMonitor(hmd, n_shards=2, batch_size=32)
        _drive(monitor, _arrivals(X, rounds=2))
        assert monitor.report().telemetry is None

    def test_retrain_steps_counted(self, fitted_hmd):
        X, hmd = fitted_hmd
        y = np.zeros(len(X), dtype=int)
        monitor = FleetMonitor(hmd, batch_size=32, telemetry=True)
        retrainer = FleetRetrainer(
            monitor, lambda cluster: 1, X, y, min_batch=5, random_state=0
        )
        rng = np.random.default_rng(0)
        novel = rng.normal(size=(40, X.shape[1])) * 0.4
        novel[:, 2] += 10.0
        for i, window in enumerate(novel):
            monitor.submit(f"dev-{i % 4}", window)
        retrainer.drain()
        counters = monitor.metrics.snapshot()["counters"]
        assert counters["fleet_retrain_steps_total"] >= 1
        if retrainer.loop.n_retrains:
            assert counters["fleet_retrain_refits_total"] >= 1
            assert counters["fleet_retrain_windows_labelled_total"] > 0


@pytest.mark.mp
class TestWorkerTelemetry:
    def test_three_plane_fold_and_shm_roundtrip(self, fitted_hmd):
        X, hmd = fitted_hmd
        arrivals = _arrivals(X)
        plain = ShardedFleetMonitor(hmd, n_shards=2, batch_size=32)
        plain_batches = _drive(plain, arrivals)
        with WorkerShardedFleetMonitor(
            hmd,
            n_shards=2,
            batch_size=32,
            mp_context="fork",
            telemetry=True,
            policy=BackpressurePolicy(max_pending=len(arrivals) + 1),
        ) as fleet:
            batches = _drive(fleet, arrivals)
            report = fleet.report()
        assert batch_verdict_key(batches) == batch_verdict_key(plain_batches)
        counters = report.telemetry["counters"]
        # Parent plane: ingress admission; worker plane: drained counts
        # ride home inside the worker reports; supervision plane: the
        # restart/failover counters exist even at zero.
        assert counters["fleet_windows_admitted_total"] == len(arrivals)
        assert counters["fleet_windows_drained_total"] == len(arrivals)
        assert counters["fleet_worker_restarts_total"] == 0
        assert counters["fleet_worker_failovers_total"] == 0
        roundtrip = report.telemetry["histograms"]["fleet_shm_roundtrip_seconds"]
        assert roundtrip["count"] > 0
        assert roundtrip["sum"] > 0.0


def _device(device_id, n_seen=10, n_flagged=1):
    return DeviceReport(
        device_id=device_id,
        cohort="benign",
        n_seen=n_seen,
        n_flagged=n_flagged,
        n_malware_alerts=0,
        n_shed=0,
        n_pending=0,
        rejection_rate=n_flagged / n_seen,
        alert_rate=0.0,
        recent_entropy=0.1,
    )


def _shard_report(device_id, *, telemetry=None, n_quarantined=0, health=()):
    device = _device(device_id)
    return FleetReport(
        devices=(device,),
        n_seen=device.n_seen,
        n_accepted=device.n_seen - device.n_flagged,
        n_flagged=device.n_flagged,
        n_malware_alerts=0,
        n_shed=0,
        n_pending=0,
        n_batches=1,
        mean_entropy=0.2,
        drift_status=None,
        shard_health=health,
        n_quarantined=n_quarantined,
        telemetry=telemetry,
    )


def _telemetry(counter, hist_values=()):
    registry = MetricsRegistry()
    registry.counter("fleet_windows_drained_total").inc(counter)
    if hist_values:
        registry.histogram("fleet_verdict_seconds").observe_many(
            list(hist_values)
        )
    return registry.snapshot()


class TestMergeReportsTelemetry:
    def test_heterogeneous_sections_merge(self):
        merged = merge_reports([
            _shard_report("dev-a", telemetry=_telemetry(10, (0.01,))),
            _shard_report("dev-b"),  # no telemetry section at all
            _shard_report(
                "dev-c",
                telemetry=_telemetry(5, (0.02, 0.04)),
                n_quarantined=2,
                health=(
                    ShardHealthReport(2, ShardHealth.DEGRADED, 1, 3, 0.5),
                ),
            ),
        ])
        assert merged.telemetry["counters"]["fleet_windows_drained_total"] == 15
        assert merged.telemetry["histograms"]["fleet_verdict_seconds"][
            "count"
        ] == 3
        assert merged.n_quarantined == 2
        assert [r.shard_id for r in merged.shard_health] == [2]

    def test_no_telemetry_anywhere_stays_none(self):
        merged = merge_reports(
            [_shard_report("dev-a"), _shard_report("dev-b")]
        )
        assert merged.telemetry is None

    def test_histogram_merge_is_associative_through_reports(self):
        a = _shard_report("dev-a", telemetry=_telemetry(1, (0.001,)))
        b = _shard_report("dev-b", telemetry=_telemetry(2, (0.01, 0.02)))
        c = _shard_report("dev-c", telemetry=_telemetry(4, (0.1,)))
        left = merge_reports([merge_reports([a, b]), c])
        right = merge_reports([a, merge_reports([b, c])])
        assert left.telemetry == right.telemetry
        assert left.telemetry["counters"]["fleet_windows_drained_total"] == 7


class TestReportRendering:
    def test_long_device_ids_stay_aligned(self):
        report = merge_reports([
            _shard_report("edge-site-ams-rack12-device-0042"),
            _shard_report("d0"),
        ])
        text = report.as_text()
        table_lines = [
            line
            for line in text.splitlines()
            if line.startswith(("device", "-", "edge", "d0"))
        ]
        # Header, rule and both data rows all pad to the same width —
        # the long id widens every row, it never breaks alignment.
        assert len(table_lines) == 4
        assert len({len(line) for line in table_lines}) == 1

    def test_shard_health_renders_as_table(self):
        report = _shard_report(
            "dev-a",
            health=(
                ShardHealthReport(0, ShardHealth.HEALTHY, 0, 0, 0.01),
                ShardHealthReport(1, ShardHealth.DEAD, 3, 5, 0.0),
            ),
        )
        text = report.as_text()
        assert "shard" in text and "heartbeat_age" in text
        assert "healthy" in text and "dead" in text

    def test_quarantined_rendered_only_when_nonzero(self):
        assert "quarantined=" not in _shard_report("dev-a").as_text()
        assert "quarantined=3" in _shard_report(
            "dev-a", n_quarantined=3
        ).as_text()

    def test_telemetry_digest_line(self):
        report = _shard_report(
            "dev-a", telemetry=_telemetry(12, (0.005, 0.01))
        )
        text = report.as_text()
        assert "telemetry: " in text
        assert "drained=12" in text
        assert "verdict_ms p50/p95=" in text
