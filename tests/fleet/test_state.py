"""Tests for ring buffers and per-device state."""

import numpy as np
import pytest

from repro.fleet import DeviceState, RingBuffer


class TestRingBuffer:
    def test_push_below_capacity(self):
        buf = RingBuffer(4)
        buf.push(1.0)
        buf.push(2.0)
        np.testing.assert_allclose(buf.values(), [1.0, 2.0])
        assert len(buf) == 2

    def test_wraps_and_evicts_oldest(self):
        buf = RingBuffer(3)
        for v in (1, 2, 3, 4, 5):
            buf.push(v)
        np.testing.assert_allclose(buf.values(), [3.0, 4.0, 5.0])
        assert len(buf) == 3

    def test_extend_vectorised(self):
        buf = RingBuffer(4)
        buf.extend([1.0, 2.0, 3.0])
        buf.extend([4.0, 5.0])
        np.testing.assert_allclose(buf.values(), [2.0, 3.0, 4.0, 5.0])

    def test_extend_larger_than_capacity(self):
        buf = RingBuffer(3)
        buf.extend(np.arange(10.0))
        np.testing.assert_allclose(buf.values(), [7.0, 8.0, 9.0])

    def test_extend_matches_push_sequence(self):
        rng = np.random.default_rng(0)
        values = rng.random(57)
        pushed, extended = RingBuffer(16), RingBuffer(16)
        for v in values:
            pushed.push(v)
        for chunk in np.array_split(values, 9):
            extended.extend(chunk)
        np.testing.assert_array_equal(pushed.values(), extended.values())

    def test_mean_and_empty(self):
        buf = RingBuffer(8)
        assert buf.mean() == 0.0
        buf.extend([1.0, 3.0])
        assert buf.mean() == pytest.approx(2.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)


class TestDeviceState:
    def test_record_bulk_counters(self):
        state = DeviceState(device_id="dev-0", entropy_recent=RingBuffer(8))
        predictions = np.array([1, 0, 1, 1])
        entropy = np.array([0.1, 0.2, 0.9, 0.3])
        accepted = np.array([True, True, False, True])
        state.record(predictions, entropy, accepted, last_step=4)
        assert state.n_seen == 4
        assert state.n_accepted == 3
        assert state.n_flagged == 1
        assert state.n_malware_alerts == 2  # accepted & predicted malware
        assert state.rejection_rate == pytest.approx(0.25)
        assert state.alert_rate == pytest.approx(2 / 3)
        assert state.mean_entropy == pytest.approx(np.mean(entropy))
        assert state.recent_entropy == pytest.approx(np.mean(entropy))
        assert state.last_step == 4

    def test_rates_zero_when_unseen(self):
        state = DeviceState(device_id="dev-0")
        assert state.rejection_rate == 0.0
        assert state.alert_rate == 0.0
        assert state.mean_entropy == 0.0
