"""Tests for the sharded fleet subsystem.

The load-bearing guarantees, in the order the module builds them up:

1. :class:`ShardRouter` assignments are stable and rebalance plans are
   deterministic and minimal;
2. :class:`ShardQueue` reproduces :class:`FleetQueue` policy semantics
   operation for operation (fuzzed over submit/submit_block/take
   interleavings and every shed mode);
3. :class:`PublishedHmd` verdicts are bitwise identical to
   ``TrustedHMD.analyze`` (fuzzed over ensemble kinds, sizes, depths
   and class counts);
4. :class:`ShardedFleetMonitor` is indistinguishable from one
   :class:`FleetMonitor` over the same traffic: bitwise verdicts,
   identical device report rows, identical forensic streams — fuzzed
   over shard counts, device counts and backpressure policies;
5. snapshot/restore and rebalance keep all of the above mid-stream.
"""

import pickle

import numpy as np
import pytest

from repro.fleet import (
    BackpressurePolicy,
    FleetMonitor,
    FleetQueue,
    FleetRetrainer,
    IndexedWindowBatch,
    PublishedHmd,
    ShardQueue,
    ShardRouter,
    ShardedFleetMonitor,
    WindowRequest,
)
from repro.fleet.engine import batch_verdict_key
from repro.fleet.report import device_report_key
from repro.ml import (
    BaggingClassifier,
    ExtraTreesClassifier,
    RandomForestClassifier,
)
from repro.uncertainty import TrustedHMD
from tests.conftest import make_blobs


@pytest.fixture(scope="module")
def fitted_hmd():
    X, y = make_blobs(n_per_class=120, separation=4.0, seed=70)
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=20, random_state=0),
        threshold=0.4,
    ).fit(X, y)
    return X, y, hmd


def _arrivals(X, n_devices, rounds, seed=1):
    rng = np.random.default_rng(seed)
    events = []
    for _ in range(rounds):
        for d in range(n_devices):
            events.append((f"dev-{d:03d}", X[rng.integers(len(X))]))
    return events


def _drive(monitor, arrivals, *, register=True):
    if register:
        for device_id, _ in arrivals:
            monitor.register(device_id)
    for device_id, window in arrivals:
        monitor.submit(device_id, window)
    return monitor.drain()


def _forensic_stream(queue):
    return [
        (s.device_id, s.seq, s.prediction, s.entropy) for s in queue.snapshot()
    ]


class TestShardRouter:
    def test_assignment_stable_and_in_range(self):
        router = ShardRouter(5)
        ids = [f"device-{i}" for i in range(200)]
        first = [router.shard_of(d) for d in ids]
        assert all(0 <= s < 5 for s in first)
        assert [ShardRouter(5).shard_of(d) for d in ids] == first

    def test_spreads_devices(self):
        router = ShardRouter(4)
        spread = router.spread(f"device-{i}" for i in range(400))
        assert set(spread) == {0, 1, 2, 3}
        assert all(len(v) > 40 for v in spread.values())

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(0)

    def test_rebalance_plan_lists_only_moves(self):
        router = ShardRouter(4)
        ids = [f"device-{i}" for i in range(100)]
        plan = router.plan_rebalance(ids, 6)
        new_router = ShardRouter(6)
        for device_id in ids:
            old, new = router.shard_of(device_id), new_router.shard_of(device_id)
            if old != new:
                assert plan[device_id] == (old, new)
            else:
                assert device_id not in plan

    def test_rebalance_plan_deterministic(self):
        ids = [f"device-{i}" for i in range(50)]
        assert ShardRouter(3).plan_rebalance(ids, 7) == ShardRouter(
            3
        ).plan_rebalance(ids, 7)


def _random_ops(rng, n_devices, n_ops):
    """A random interleaving of submits, block submits and takes."""
    ops = []
    seqs = {f"d{i}": 0 for i in range(n_devices)}
    for _ in range(n_ops):
        kind = rng.integers(3)
        device = f"d{rng.integers(n_devices)}"
        if kind == 0:
            ops.append(("submit", device, seqs[device]))
            seqs[device] += 1
        elif kind == 1:
            m = int(rng.integers(1, 9))
            ops.append(("block", device, seqs[device], m))
            seqs[device] += m
        else:
            ops.append(("take", int(rng.integers(1, 17))))
    return ops


def _replay(queue, ops, n_features=4):
    """Run an op list; return the take stream and admission results."""
    taken, admitted = [], []
    for op in ops:
        if op[0] == "submit":
            _, device, seq = op
            features = np.full(n_features, float(seq) + hash(device) % 7)
            admitted.append(
                queue.submit(
                    WindowRequest(device_id=device, features=features, seq=seq)
                )
            )
        elif op[0] == "block":
            _, device, start, m = op
            features = np.arange(m * n_features, dtype=float).reshape(
                m, n_features
            ) + start
            admitted.append(
                queue.submit_block(
                    device, features, np.arange(start, start + m)
                )
            )
        else:
            batch = queue.take(op[1])
            taken.extend(
                (str(batch.device_ids[i]), int(batch.seqs[i]))
                for i in range(len(batch))
            )
            taken.append(("features-sum", float(batch.features.sum())))
    return taken, admitted


class TestShardQueue:
    POLICIES = [
        BackpressurePolicy(),
        BackpressurePolicy(max_pending=20, shed="drop_oldest"),
        BackpressurePolicy(max_pending=20, shed="drop_newest"),
        BackpressurePolicy(max_pending=500, max_pending_per_device=5),
        BackpressurePolicy(
            max_pending=500, max_pending_per_device=5, shed="drop_newest"
        ),
        BackpressurePolicy(
            max_pending=30, max_pending_per_device=4, shed="drop_oldest"
        ),
    ]

    @pytest.mark.parametrize("policy_idx", range(len(POLICIES)))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_fleet_queue_semantics(self, policy_idx, seed):
        """Same ops → same takes, same sheds, same pending, row for row."""
        policy = self.POLICIES[policy_idx]
        rng = np.random.default_rng(1000 * policy_idx + seed)
        ops = _random_ops(rng, n_devices=6, n_ops=120)
        reference, ref_admitted = _replay(FleetQueue(policy), ops)
        shard_queue = ShardQueue(policy)
        actual, actual_admitted = _replay(shard_queue, ops)
        assert actual == reference
        assert actual_admitted == ref_admitted
        # Drain the rest and compare the tails too.
        tail_ref, _ = _replay(FleetQueue(policy), ops + [("take", 10_000)])
        tail_act, _ = _replay(ShardQueue(policy), ops + [("take", 10_000)])
        assert tail_act == tail_ref

    def test_shed_accounting_matches(self):
        policy = BackpressurePolicy(max_pending=100, max_pending_per_device=3)
        reference, shard_queue = FleetQueue(policy), ShardQueue(policy)
        for queue in (reference, shard_queue):
            for seq in range(10):
                queue.submit(
                    WindowRequest("chatty", np.zeros(3) + seq, seq)
                )
            queue.submit(WindowRequest("quiet", np.ones(3), 0))
        assert shard_queue.shed_by_device == reference.shed_by_device
        assert shard_queue.pending("chatty") == reference.pending("chatty")
        assert shard_queue.pending("quiet") == reference.pending("quiet")
        assert len(shard_queue) == len(reference)
        assert shard_queue.total_shed == reference.total_shed

    def test_take_returns_indexed_batch(self):
        queue = ShardQueue()
        queue.submit_block("a", np.arange(8.0).reshape(2, 4), [0, 1])
        queue.submit(WindowRequest("b", np.zeros(4), 0))
        batch = queue.take(3)
        assert isinstance(batch, IndexedWindowBatch)
        assert batch.device_ids.tolist() == ["a", "a", "b"]
        assert batch.device_index.tolist() == [0, 0, 1]
        assert batch.seqs.tolist() == [0, 1, 0]

    def test_uncongested_take_is_zero_copy(self):
        queue = ShardQueue()
        queue.submit_block("a", np.arange(12.0).reshape(3, 4), [0, 1, 2])
        batch = queue.take(2)
        assert batch.features.base is not None  # a view of the arena

    def test_ragged_rows_rejected(self):
        queue = ShardQueue()
        queue.submit(WindowRequest("a", np.zeros(4), 0))
        with pytest.raises(ValueError):
            queue.submit(WindowRequest("a", np.zeros(5), 1))

    def test_take_validates_n(self):
        with pytest.raises(ValueError):
            ShardQueue().take(0)

    def test_extract_device_moves_rows(self):
        queue = ShardQueue()
        queue.submit_block("a", np.ones((3, 2)), [0, 1, 2])
        queue.submit_block("b", np.full((2, 2), 2.0), [0, 1])
        queue.submit(WindowRequest("a", np.full(2, 3.0), 3))
        features, seqs = queue.extract_device("a")
        assert seqs.tolist() == [0, 1, 2, 3]
        assert features.shape == (4, 2)
        assert queue.pending("a") == 0
        assert queue.total_shed == 0  # moved, not shed
        remaining = queue.take(10)
        assert remaining.device_ids.tolist() == ["b", "b"]

    def test_drained_devices_release_eviction_lookups(self):
        """Quiet devices must not pin dead arena blocks via stale
        (block, pos) eviction entries after their rows are consumed."""
        policy = BackpressurePolicy(max_pending=10_000, max_pending_per_device=32)
        queue = ShardQueue(policy)
        for d in range(50):
            queue.submit_block(
                f"dev-{d}", np.full((16, 3), float(d)), np.arange(16)
            )
        while len(queue):
            queue.take(64)
        assert queue._dev_rows == {}

    def test_snapshot_restore_roundtrip(self):
        policy = BackpressurePolicy(max_pending=50, max_pending_per_device=8)
        queue = ShardQueue(policy)
        rng = np.random.default_rng(3)
        ops = _random_ops(rng, n_devices=4, n_ops=60)
        _replay(queue, ops)
        restored = ShardQueue.restore(pickle.loads(pickle.dumps(queue.snapshot())))
        assert len(restored) == len(queue)
        assert restored.shed_by_device == queue.shed_by_device
        original = queue.take(10_000)
        copy = restored.take(10_000)
        assert copy.device_ids.tolist() == original.device_ids.tolist()
        assert copy.seqs.tolist() == original.seqs.tolist()
        np.testing.assert_array_equal(copy.features, original.features)


class TestPublishedHmd:
    @pytest.mark.parametrize(
        "ensemble",
        [
            RandomForestClassifier(n_estimators=15, random_state=0),
            ExtraTreesClassifier(n_estimators=9, random_state=1),
            BaggingClassifier(n_estimators=7, random_state=2),
            RandomForestClassifier(
                n_estimators=5, max_depth=1, random_state=3
            ),  # stumps
        ],
    )
    def test_bitwise_identical_to_analyze(self, ensemble):
        X, y = make_blobs(n_per_class=100, separation=2.0, seed=11)
        hmd = TrustedHMD(ensemble, threshold=0.35).fit(X, y)
        published = PublishedHmd(hmd)
        rng = np.random.default_rng(0)
        for n in (1, 3, 100, 257, 600):
            Xq = X[rng.integers(len(X), size=n)]
            reference = hmd.analyze(Xq)
            predictions, entropy, accepted = published.verdict(Xq)
            np.testing.assert_array_equal(predictions, reference.predictions)
            np.testing.assert_array_equal(entropy, reference.entropy)
            np.testing.assert_array_equal(accepted, reference.accepted)

    def test_bitwise_identical_with_pca_front(self):
        X, y = make_blobs(n_per_class=100, separation=2.0, seed=12)
        hmd = TrustedHMD(
            RandomForestClassifier(n_estimators=10, random_state=0),
            threshold=0.35,
            n_components=2,
        ).fit(X, y)
        published = PublishedHmd(hmd)
        reference = hmd.analyze(X)
        predictions, entropy, accepted = published.verdict(X)
        np.testing.assert_array_equal(predictions, reference.predictions)
        np.testing.assert_array_equal(entropy, reference.entropy)
        np.testing.assert_array_equal(accepted, reference.accepted)

    def test_multiclass_falls_back_bitwise(self):
        rng = np.random.default_rng(5)
        X = np.vstack(
            [rng.normal(loc, 1.0, size=(60, 4)) for loc in (0.0, 3.0, 6.0)]
        )
        y = np.repeat([0, 1, 2], 60)
        hmd = TrustedHMD(
            RandomForestClassifier(n_estimators=12, random_state=0),
            threshold=0.6,
        ).fit(X, y)
        published = PublishedHmd(hmd)
        assert published.entropy_table is None
        reference = hmd.analyze(X)
        predictions, entropy, accepted = published.verdict(X)
        np.testing.assert_array_equal(predictions, reference.predictions)
        np.testing.assert_array_equal(entropy, reference.entropy)
        np.testing.assert_array_equal(accepted, reference.accepted)

    def test_staleness_detection(self, fitted_hmd):
        X, y, _ = fitted_hmd
        hmd = TrustedHMD(
            RandomForestClassifier(n_estimators=8, random_state=0),
            threshold=0.4,
        ).fit(X, y)
        published = PublishedHmd(hmd)
        assert published.is_current()
        hmd.with_threshold(0.2)
        assert not published.is_current()
        republished = PublishedHmd(hmd)
        assert republished.is_current()
        hmd.fit(X, y)  # rebuilds estimators_
        assert not republished.is_current()

    def test_requires_fitted(self):
        with pytest.raises(ValueError):
            PublishedHmd(TrustedHMD(RandomForestClassifier(n_estimators=3)))


class TestShardedEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 8])
    def test_verdicts_bitwise_identical(self, fitted_hmd, n_shards):
        X, y, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=13, rounds=20)
        single = FleetMonitor(hmd, batch_size=64)
        sharded = ShardedFleetMonitor(hmd, n_shards=n_shards, batch_size=64)
        single_batches = _drive(single, arrivals)
        sharded_batches = _drive(sharded, arrivals)
        assert batch_verdict_key(sharded_batches) == batch_verdict_key(
            single_batches
        )

    @pytest.mark.parametrize(
        "n_devices,rounds,batch_size", [(1, 30, 16), (7, 11, 8), (37, 6, 64)]
    )
    def test_fuzz_device_counts_and_batch_sizes(
        self, fitted_hmd, n_devices, rounds, batch_size
    ):
        X, y, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=n_devices, rounds=rounds, seed=7)
        single = FleetMonitor(hmd, batch_size=batch_size)
        sharded = ShardedFleetMonitor(
            hmd, n_shards=4, batch_size=batch_size
        )
        single_batches = _drive(single, arrivals)
        sharded_batches = _drive(sharded, arrivals)
        assert batch_verdict_key(sharded_batches) == batch_verdict_key(
            single_batches
        )
        assert device_report_key(sharded.report()) == device_report_key(single.report())

    def test_merged_report_consistency(self, fitted_hmd):
        X, y, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=24, rounds=15, seed=3)
        single = FleetMonitor(hmd, batch_size=32)
        sharded = ShardedFleetMonitor(hmd, n_shards=4, batch_size=32)
        _drive(single, arrivals)
        _drive(sharded, arrivals)
        reference, merged = single.report(), sharded.report()
        assert merged.n_devices == reference.n_devices
        assert merged.n_seen == reference.n_seen
        assert merged.n_accepted == reference.n_accepted
        assert merged.n_flagged == reference.n_flagged
        assert merged.n_malware_alerts == reference.n_malware_alerts
        assert merged.n_shed == reference.n_shed
        assert merged.n_pending == reference.n_pending == 0
        assert merged.mean_entropy == pytest.approx(
            reference.mean_entropy, abs=1e-12
        )
        assert device_report_key(merged) == device_report_key(reference)
        # Facade-level merged stats mirror the single monitor's.
        assert sharded.stats.n_seen == single.stats.n_seen
        assert sharded.stats.n_flagged == single.stats.n_flagged

    def test_forensic_streams_identical(self, fitted_hmd):
        X, y, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=9, rounds=25, seed=5)
        single = FleetMonitor(hmd, batch_size=48)
        sharded = ShardedFleetMonitor(hmd, n_shards=3, batch_size=48)
        _drive(single, arrivals)
        _drive(sharded, arrivals)
        reference = _forensic_stream(single.forensics)
        merged = _forensic_stream(sharded.forensics)
        # Same flagged windows with identical verdicts; global order may
        # interleave differently across shards, per-device order must not.
        assert sorted(merged) == sorted(reference)
        for device_id in {s[0] for s in reference}:
            assert [s for s in merged if s[0] == device_id] == [
                s for s in reference if s[0] == device_id
            ]

    def test_per_device_caps_shed_identically(self, fitted_hmd):
        X, y, hmd = fitted_hmd
        policy = BackpressurePolicy(max_pending=10_000, max_pending_per_device=6)
        arrivals = _arrivals(X, n_devices=11, rounds=30, seed=9)
        single = FleetMonitor(hmd, batch_size=64, policy=policy)
        sharded = ShardedFleetMonitor(
            hmd, n_shards=4, batch_size=64, policy=policy
        )
        single_batches = _drive(single, arrivals)
        sharded_batches = _drive(sharded, arrivals)
        merged_shed = {}
        for shard in sharded.shards:
            merged_shed.update(shard.queue.shed_by_device)
        assert merged_shed == single.queue.shed_by_device
        assert batch_verdict_key(sharded_batches) == batch_verdict_key(
            single_batches
        )

    @pytest.mark.parametrize("shed", ["drop_oldest", "drop_newest"])
    def test_drop_modes_with_interleaved_drains(self, fitted_hmd, shed):
        """Backpressure fuzz: submit/drain interleave, caps tripping."""
        X, y, hmd = fitted_hmd
        policy = BackpressurePolicy(
            max_pending=10_000, max_pending_per_device=4, shed=shed
        )
        arrivals = _arrivals(X, n_devices=8, rounds=24, seed=13)
        single = FleetMonitor(hmd, batch_size=32, policy=policy)
        sharded = ShardedFleetMonitor(hmd, n_shards=3, batch_size=32, policy=policy)
        results = {}
        for name, monitor in (("single", single), ("sharded", sharded)):
            batches = []
            for i, (device_id, window) in enumerate(arrivals):
                monitor.submit(device_id, window)
                if i % 40 == 39:
                    result = monitor.process_batch()
                    if result is not None:
                        batches.append(result)
            batches.extend(monitor.drain())
            results[name] = batches
        # Per-device caps see identical per-device pressure in both
        # topologies even mid-drain, so sheds and verdicts agree.
        assert batch_verdict_key(results["sharded"]) == batch_verdict_key(
            results["single"]
        )

    def test_submit_many_block_path(self, fitted_hmd):
        X, y, hmd = fitted_hmd
        rng = np.random.default_rng(2)
        single = FleetMonitor(hmd, batch_size=50)
        sharded = ShardedFleetMonitor(hmd, n_shards=4, batch_size=50)
        blocks = {
            f"dev-{d:03d}": X[rng.integers(len(X), size=12)] for d in range(17)
        }
        for monitor in (single, sharded):
            for device_id, windows in blocks.items():
                assert monitor.submit_many(device_id, windows) == 12
        assert batch_verdict_key(sharded.drain()) == batch_verdict_key(
            single.drain()
        )

    def test_facade_api_parity(self, fitted_hmd):
        X, y, hmd = fitted_hmd
        sharded = ShardedFleetMonitor(hmd, n_shards=2, batch_size=16)
        assert sharded.pending == 0
        assert sharded.process_batch() is None
        sharded.register("dev-a", cohort="benign")
        assert sharded.submit("dev-a", X[0])
        assert sharded.pending == 1
        with pytest.raises(ValueError):
            sharded.submit("dev-a", X[0][:-1])  # ragged window
        result = sharded.process_batch()
        assert result.device_ids.tolist() == ["dev-a"]
        assert sharded.report().devices[0].cohort == "benign"

    def test_requires_fitted_hmd(self):
        with pytest.raises(ValueError):
            ShardedFleetMonitor(
                TrustedHMD(RandomForestClassifier(n_estimators=3))
            )


def _zero_day(seed, n, d):
    """A tight novel cluster far outside the training distribution."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d)) * 0.4
    X[:, 1] += 10.0
    return X


class TestRetrainIntegration:
    def test_sharded_retrain_republishes(self, fitted_hmd):
        X, y, _ = fitted_hmd
        hmd = TrustedHMD(
            RandomForestClassifier(
                n_estimators=10, random_state=0, grower="hist"
            ),
            threshold=0.40,
        ).fit(X, y)
        sharded = ShardedFleetMonitor(hmd, n_shards=3, batch_size=32)
        retrainer = FleetRetrainer(
            sharded, labeler=lambda cluster: 1, X_train=X, y_train=y,
            min_batch=8,
        )
        epoch_before = sharded.published
        # A zero-day cluster: high-entropy windows flood the forensic
        # stream and trigger warm retrains mid-drain.
        for i, window in enumerate(_zero_day(seed=21, n=80, d=X.shape[1])):
            sharded.submit(f"dev-{i % 6:03d}", window)
        outcomes = retrainer.drain()
        assert any(outcome.retrained for outcome in outcomes)
        assert len(sharded.forensics) == 0  # fully triaged
        sharded.submit("dev-000", X[0])
        sharded.process_batch()
        # The facade republished the shared view after the warm refit.
        assert sharded.published is not epoch_before
        assert sharded.published.is_current()

    def test_post_retrain_verdicts_match_single(self, fitted_hmd):
        """After a warm refit, sharded verdicts still track analyze."""
        X, y, _ = fitted_hmd
        hmd = TrustedHMD(
            RandomForestClassifier(
                n_estimators=10, random_state=0, grower="hist"
            ),
            threshold=0.4,
        ).fit(X, y)
        sharded = ShardedFleetMonitor(hmd, n_shards=2, batch_size=64)
        hmd.partial_refit(X[:40], y[:40])
        sharded.submit_many("dev-a", X[:30])
        result = sharded.process_batch()
        reference = hmd.analyze(X[:30])
        np.testing.assert_array_equal(result.predictions, reference.predictions)
        np.testing.assert_array_equal(result.entropy, reference.entropy)
        np.testing.assert_array_equal(result.accepted, reference.accepted)


class TestSnapshotRestore:
    def test_mid_stream_resume_identical_verdicts(self, fitted_hmd):
        X, y, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=10, rounds=20, seed=31)
        half = len(arrivals) // 2

        continuous = ShardedFleetMonitor(hmd, n_shards=3, batch_size=32)
        for device_id, window in arrivals[:half]:
            continuous.submit(device_id, window)
        first_half = continuous.drain(max_batches=3)  # leave a backlog

        checkpoint = pickle.loads(pickle.dumps(continuous.snapshot()))
        restored = ShardedFleetMonitor.restore(hmd, checkpoint)
        assert restored.pending == continuous.pending
        assert device_report_key(restored.report()) == device_report_key(
            continuous.report()
        )
        assert _forensic_stream(restored.forensics) == _forensic_stream(
            continuous.forensics
        )

        for monitor in (continuous, restored):
            for device_id, window in arrivals[half:]:
                monitor.submit(device_id, window)
        tail_original = continuous.drain()
        tail_restored = restored.drain()
        assert batch_verdict_key(tail_restored) == batch_verdict_key(
            tail_original
        )
        assert device_report_key(restored.report()) == device_report_key(
            continuous.report()
        )

    def test_restore_preserves_policy_through_rebalance(self, fitted_hmd):
        """The facade policy survives restore — and a later rebalance
        builds its new shard queues with the original bounds."""
        X, y, hmd = fitted_hmd
        policy = BackpressurePolicy(max_pending=7, shed="drop_newest")
        fleet = ShardedFleetMonitor(hmd, n_shards=2, batch_size=8, policy=policy)
        fleet.submit_many("dev-a", X[:3])
        restored = ShardedFleetMonitor.restore(
            hmd, pickle.loads(pickle.dumps(fleet.snapshot()))
        )
        assert restored.policy == policy
        restored.rebalance(3)
        for shard in restored.shards:
            assert shard.queue.policy == policy

    def test_restore_rejects_mismatched_router(self, fitted_hmd):
        X, y, hmd = fitted_hmd
        fleet = ShardedFleetMonitor(hmd, n_shards=2, batch_size=8)
        state = fleet.snapshot()
        with pytest.raises(ValueError):
            ShardedFleetMonitor.restore(hmd, state, router=ShardRouter(5))

    def test_flag_storm_stays_bounded(self, fitted_hmd):
        """Columnar staging must not defeat the forensic memory cap."""
        X, y, hmd = fitted_hmd
        from repro.uncertainty.online import ForensicQueue

        sharded = ShardedFleetMonitor(
            hmd,
            n_shards=2,
            batch_size=64,
            forensics=ForensicQueue(maxlen=40),
        )
        # Every zero-day window gets flagged: a flag storm.
        storm = _zero_day(seed=3, n=400, d=X.shape[1])
        for i, window in enumerate(storm):
            sharded.submit(f"dev-{i % 4:03d}", window)
        sharded.drain()
        assert sharded._staged_rows <= sharded._stage_limit
        assert len(sharded.forensics) <= 40
        assert sharded.forensics.total_flagged == sharded.stats.n_flagged
        assert sharded.stats.n_flagged > 40  # the cap actually bit

    def test_shard_monitor_snapshot_self_describing(self, fitted_hmd):
        """A shard's inner monitor snapshot restores through the public
        FleetMonitor.restore without naming the queue class."""
        X, y, hmd = fitted_hmd
        sharded = ShardedFleetMonitor(hmd, n_shards=2, batch_size=8)
        sharded.submit_many("dev-a", X[:5])
        shard = sharded.shard_for("dev-a")
        restored = FleetMonitor.restore(
            hmd, pickle.loads(pickle.dumps(shard.monitor.snapshot()))
        )
        assert isinstance(restored.queue, ShardQueue)
        assert batch_verdict_key(restored.drain()) == batch_verdict_key(
            shard.monitor.drain()
        )

    def test_single_monitor_snapshot_roundtrip(self, fitted_hmd):
        X, y, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=5, rounds=8, seed=33)
        monitor = FleetMonitor(hmd, batch_size=16)
        for device_id, window in arrivals:
            monitor.submit(device_id, window)
        monitor.drain(max_batches=1)
        restored = FleetMonitor.restore(
            hmd, pickle.loads(pickle.dumps(monitor.snapshot()))
        )
        assert restored.pending == monitor.pending
        original = monitor.drain()
        copy = restored.drain()
        assert batch_verdict_key(copy) == batch_verdict_key(original)
        assert device_report_key(restored.report()) == device_report_key(monitor.report())


class TestRebalance:
    def test_rebalance_preserves_verdicts(self, fitted_hmd):
        X, y, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=12, rounds=16, seed=41)
        half = len(arrivals) // 2

        single = FleetMonitor(hmd, batch_size=32)
        sharded = ShardedFleetMonitor(hmd, n_shards=2, batch_size=32)
        for monitor in (single, sharded):
            for device_id, window in arrivals[:half]:
                monitor.submit(device_id, window)
        single_batches = single.drain(max_batches=2)
        sharded_batches = sharded.drain(max_batches=2)

        plan = sharded.rebalance(5)
        assert sharded.n_shards == 5
        assert all(new < 5 for _, new in plan.values())

        for monitor in (single, sharded):
            for device_id, window in arrivals[half:]:
                monitor.submit(device_id, window)
        single_batches += single.drain()
        sharded_batches += sharded.drain()
        assert batch_verdict_key(sharded_batches) == batch_verdict_key(
            single_batches
        )
        assert device_report_key(sharded.report()) == device_report_key(single.report())

    def test_rebalance_moves_backlog_and_state(self, fitted_hmd):
        X, y, hmd = fitted_hmd
        sharded = ShardedFleetMonitor(hmd, n_shards=2, batch_size=8)
        for d in range(8):
            sharded.submit_many(f"dev-{d:03d}", X[:5])
        pending_before = sharded.pending
        sharded.rebalance(4)
        assert sharded.pending == pending_before
        for shard in sharded.shards:
            for device_id in shard.monitor.devices:
                assert sharded.router.shard_of(device_id) == shard.shard_id
        # Per-device seq counters moved with their devices.
        assert sharded.submit_many("dev-000", X[:2]) == 2
        batches = sharded.drain()
        seqs = np.concatenate(
            [b.seqs[b.device_ids == "dev-000"] for b in batches]
        )
        assert sorted(seqs.tolist()) == list(range(7))
