"""Tests for the multiplexing queue and backpressure/shedding policy."""

import numpy as np
import pytest

from repro.fleet import BackpressurePolicy, FleetQueue, WindowRequest


def _req(device="dev-0", seq=0):
    return WindowRequest(device_id=device, features=np.zeros(3), seq=seq)


class TestBackpressurePolicy:
    def test_defaults_valid(self):
        policy = BackpressurePolicy()
        assert policy.max_pending == 4096
        assert policy.shed == "drop_oldest"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_pending": 0},
            {"max_pending_per_device": 0},
            {"shed": "explode"},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            BackpressurePolicy(**kwargs)


class TestFleetQueue:
    def test_fifo_order(self):
        queue = FleetQueue()
        for i in range(5):
            assert queue.submit(_req(seq=i))
        assert [r.seq for r in queue.take(3)] == [0, 1, 2]
        assert len(queue) == 2

    def test_drop_newest_refuses_when_full(self):
        queue = FleetQueue(BackpressurePolicy(max_pending=2, shed="drop_newest"))
        assert queue.submit(_req(seq=0))
        assert queue.submit(_req(seq=1))
        assert not queue.submit(_req(seq=2))
        assert queue.total_shed == 1
        assert [r.seq for r in queue.take(10)] == [0, 1]

    def test_drop_oldest_evicts_stalest(self):
        queue = FleetQueue(BackpressurePolicy(max_pending=2, shed="drop_oldest"))
        queue.submit(_req(device="a", seq=0))
        queue.submit(_req(device="b", seq=0))
        assert queue.submit(_req(device="c", seq=0))  # evicts a's window
        assert queue.total_shed == 1
        assert queue.shed_by_device == {"a": 1}
        taken = queue.take(10)
        assert [r.device_id for r in taken] == ["b", "c"]

    def test_per_device_cap_protects_fleet(self):
        policy = BackpressurePolicy(max_pending=100, max_pending_per_device=3)
        queue = FleetQueue(policy)
        for seq in range(10):
            queue.submit(_req(device="chatty", seq=seq))
        queue.submit(_req(device="quiet", seq=0))
        # Chatty device capped at 3 (its oldest shed), quiet unaffected.
        assert queue.pending("chatty") == 3
        assert queue.pending("quiet") == 1
        assert queue.shed_by_device["chatty"] == 7
        taken = queue.take(10)
        chatty_seqs = [r.seq for r in taken if r.device_id == "chatty"]
        assert chatty_seqs == [7, 8, 9]  # freshest survive

    def test_per_device_cap_drop_newest(self):
        policy = BackpressurePolicy(
            max_pending=100, max_pending_per_device=2, shed="drop_newest"
        )
        queue = FleetQueue(policy)
        assert queue.submit(_req(seq=0))
        assert queue.submit(_req(seq=1))
        assert not queue.submit(_req(seq=2))
        assert [r.seq for r in queue.take(10)] == [0, 1]

    def test_pending_counts_stay_consistent(self):
        queue = FleetQueue(BackpressurePolicy(max_pending=4, shed="drop_oldest"))
        for seq in range(8):
            queue.submit(_req(device=f"d{seq % 2}", seq=seq))
        assert len(queue) == 4
        assert queue.pending("d0") + queue.pending("d1") == 4
        queue.take(2)
        assert len(queue) == 2
        assert queue.pending("d0") + queue.pending("d1") == 2

    def test_take_requires_positive(self):
        with pytest.raises(ValueError):
            FleetQueue().take(0)


class TestDeviceDequeTrimming:
    def test_no_unbounded_ticket_growth(self):
        """Long-running submit/take cycles must not leak stale tickets."""
        queue = FleetQueue()
        for seq in range(1000):
            queue.submit(_req(device="d", seq=seq))
            queue.take(1)
        assert len(queue) == 0
        assert len(queue._by_device["d"]) <= 1

    def test_no_growth_under_global_eviction(self):
        queue = FleetQueue(BackpressurePolicy(max_pending=2, shed="drop_oldest"))
        for seq in range(500):
            queue.submit(_req(device="d", seq=seq))
        assert len(queue) == 2
        assert len(queue._by_device["d"]) <= 3

    def test_global_order_compacts_under_stalled_consumer(self):
        """Per-device-cap evictions must not grow _order while stalled."""
        policy = BackpressurePolicy(max_pending=4096, max_pending_per_device=4)
        queue = FleetQueue(policy)
        for seq in range(10_000):
            queue.submit(_req(device="chatty", seq=seq))
        assert len(queue) == 4
        assert len(queue._order) <= 2 * max(len(queue._items), 16)
        assert [r.seq for r in queue.take(10)] == [9996, 9997, 9998, 9999]
