"""Tests for the multiplexing queue and backpressure/shedding policy."""

import numpy as np
import pytest

from repro.fleet import BackpressurePolicy, FleetQueue, WindowBatch, WindowRequest


def _req(device="dev-0", seq=0):
    return WindowRequest(device_id=device, features=np.zeros(3), seq=seq)


class TestBackpressurePolicy:
    def test_defaults_valid(self):
        policy = BackpressurePolicy()
        assert policy.max_pending == 4096
        assert policy.shed == "drop_oldest"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_pending": 0},
            {"max_pending_per_device": 0},
            {"shed": "explode"},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            BackpressurePolicy(**kwargs)


class TestFleetQueue:
    def test_fifo_order(self):
        queue = FleetQueue()
        for i in range(5):
            assert queue.submit(_req(seq=i))
        batch = queue.take(3)
        assert isinstance(batch, WindowBatch)
        assert batch.seqs.tolist() == [0, 1, 2]
        assert len(queue) == 2

    def test_drop_newest_refuses_when_full(self):
        queue = FleetQueue(BackpressurePolicy(max_pending=2, shed="drop_newest"))
        assert queue.submit(_req(seq=0))
        assert queue.submit(_req(seq=1))
        assert not queue.submit(_req(seq=2))
        assert queue.total_shed == 1
        assert queue.take(10).seqs.tolist() == [0, 1]

    def test_drop_oldest_evicts_stalest(self):
        queue = FleetQueue(BackpressurePolicy(max_pending=2, shed="drop_oldest"))
        queue.submit(_req(device="a", seq=0))
        queue.submit(_req(device="b", seq=0))
        assert queue.submit(_req(device="c", seq=0))  # evicts a's window
        assert queue.total_shed == 1
        assert queue.shed_by_device == {"a": 1}
        assert queue.take(10).device_ids.tolist() == ["b", "c"]

    def test_per_device_cap_protects_fleet(self):
        policy = BackpressurePolicy(max_pending=100, max_pending_per_device=3)
        queue = FleetQueue(policy)
        for seq in range(10):
            queue.submit(_req(device="chatty", seq=seq))
        queue.submit(_req(device="quiet", seq=0))
        # Chatty device capped at 3 (its oldest shed), quiet unaffected.
        assert queue.pending("chatty") == 3
        assert queue.pending("quiet") == 1
        assert queue.shed_by_device["chatty"] == 7
        batch = queue.take(10)
        chatty_seqs = batch.seqs[batch.device_ids == "chatty"]
        assert chatty_seqs.tolist() == [7, 8, 9]  # freshest survive

    def test_per_device_cap_drop_newest(self):
        policy = BackpressurePolicy(
            max_pending=100, max_pending_per_device=2, shed="drop_newest"
        )
        queue = FleetQueue(policy)
        assert queue.submit(_req(seq=0))
        assert queue.submit(_req(seq=1))
        assert not queue.submit(_req(seq=2))
        assert queue.take(10).seqs.tolist() == [0, 1]

    def test_pending_counts_stay_consistent(self):
        queue = FleetQueue(BackpressurePolicy(max_pending=4, shed="drop_oldest"))
        for seq in range(8):
            queue.submit(_req(device=f"d{seq % 2}", seq=seq))
        assert len(queue) == 4
        assert queue.pending("d0") + queue.pending("d1") == 4
        queue.take(2)
        assert len(queue) == 2
        assert queue.pending("d0") + queue.pending("d1") == 2

    def test_take_requires_positive(self):
        with pytest.raises(ValueError):
            FleetQueue().take(0)

    def test_take_empty_queue(self):
        batch = FleetQueue().take(5)
        assert len(batch) == 0
        assert batch.features.shape[0] == 0


class TestBulkIngress:
    def _block(self, m, device="dev-0", start_seq=0, d=3):
        features = np.arange(m * d, dtype=float).reshape(m, d)
        return device, features, np.arange(start_seq, start_seq + m)

    def test_block_admitted_whole(self):
        queue = FleetQueue()
        device, features, seqs = self._block(6)
        assert queue.submit_block(device, features, seqs) == 6
        assert len(queue) == 6
        assert queue.pending(device) == 6

    def test_block_take_is_zero_copy_slice(self):
        """A batch served from one block shares its memory (no copy)."""
        queue = FleetQueue()
        device, features, seqs = self._block(8)
        queue.submit_block(device, features, seqs)
        batch = queue.take(5)
        assert np.shares_memory(batch.features, features)
        np.testing.assert_array_equal(batch.features, features[:5])
        assert batch.seqs.tolist() == [0, 1, 2, 3, 4]
        assert set(batch.device_ids.tolist()) == {device}

    def test_take_spans_blocks_in_admission_order(self):
        queue = FleetQueue()
        queue.submit_block(*self._block(3, device="a"))
        queue.submit(_req(device="b", seq=0))
        queue.submit_block(*self._block(2, device="c"))
        batch = queue.take(10)
        assert batch.device_ids.tolist() == ["a", "a", "a", "b", "c", "c"]
        assert batch.seqs.tolist() == [0, 1, 2, 0, 0, 1]
        assert batch.features.shape == (6, 3)

    def test_block_and_row_submits_equivalent(self):
        """Bulk ingress admits exactly what per-row submission would."""
        policy = BackpressurePolicy(max_pending=10, max_pending_per_device=4)
        bulk, rowwise = FleetQueue(policy), FleetQueue(policy)
        device, features, seqs = self._block(7, device="d")
        bulk.submit_block(device, features, seqs)
        for i in range(7):
            rowwise.submit(
                WindowRequest(device_id="d", features=features[i], seq=i)
            )
        assert bulk.pending("d") == rowwise.pending("d")
        assert bulk.shed_by_device == rowwise.shed_by_device
        assert bulk.take(10).seqs.tolist() == rowwise.take(10).seqs.tolist()

    def test_block_overflow_falls_back_to_policy(self):
        queue = FleetQueue(BackpressurePolicy(max_pending=4, shed="drop_oldest"))
        device, features, seqs = self._block(10)
        admitted = queue.submit_block(device, features, seqs)
        assert admitted == 10  # drop_oldest admits all, evicting stale rows
        assert len(queue) == 4
        assert queue.take(10).seqs.tolist() == [6, 7, 8, 9]

    def test_block_drop_newest_truncates(self):
        queue = FleetQueue(BackpressurePolicy(max_pending=4, shed="drop_newest"))
        device, features, seqs = self._block(10)
        assert queue.submit_block(device, features, seqs) == 4
        assert queue.shed_by_device[device] == 6
        assert queue.take(10).seqs.tolist() == [0, 1, 2, 3]

    def test_block_seq_length_mismatch(self):
        queue = FleetQueue()
        with pytest.raises(ValueError):
            queue.submit_block("d", np.zeros((3, 2)), np.arange(2))

    def test_requests_view_roundtrip(self):
        queue = FleetQueue()
        queue.submit_block(*self._block(2, device="a"))
        requests = queue.take(2).requests()
        assert [r.device_id for r in requests] == ["a", "a"]
        assert [r.seq for r in requests] == [0, 1]
        assert all(isinstance(r, WindowRequest) for r in requests)


class TestSegmentHousekeeping:
    def test_no_unbounded_segment_growth(self):
        """Long-running submit/take cycles must not leak dead segments."""
        queue = FleetQueue()
        for seq in range(1000):
            queue.submit(_req(device="d", seq=seq))
            queue.take(1)
        assert len(queue) == 0
        assert len(queue._by_device["d"]) <= 2
        assert len(queue._segments) <= 2

    def test_drained_device_releases_segments(self):
        """A device that uploads once and goes quiet must not pin its
        feature blocks in the per-device deque after a full drain."""
        queue = FleetQueue()
        for d in range(5):
            for seq in range(200):
                queue.submit(_req(device=f"dev-{d}", seq=seq))
        queue.take(1000)
        assert len(queue) == 0
        for d in range(5):
            assert len(queue._by_device[f"dev-{d}"]) == 0

    def test_no_growth_under_global_eviction(self):
        queue = FleetQueue(BackpressurePolicy(max_pending=2, shed="drop_oldest"))
        for seq in range(500):
            queue.submit(_req(device="d", seq=seq))
        assert len(queue) == 2
        assert len(queue._segments) <= 2 * 16

    def test_segments_compact_under_stalled_consumer(self):
        """Per-device-cap evictions must not grow the deques while stalled."""
        policy = BackpressurePolicy(max_pending=4096, max_pending_per_device=4)
        queue = FleetQueue(policy)
        for seq in range(10_000):
            queue.submit(_req(device="chatty", seq=seq))
        assert len(queue) == 4
        assert len(queue._segments) <= 2 * 16 + 1
        assert queue.take(10).seqs.tolist() == [9996, 9997, 9998, 9999]


class TestDeadStorageCompaction:
    def test_mostly_dead_segment_releases_prefix_storage(self):
        """A capped device's shed history must not pin block memory.

        Per-device shedding consumes a big submitted block front to
        back; once the dead prefix dominates, the segment's storage is
        compacted to its live tail.
        """
        policy = BackpressurePolicy(max_pending=4096, max_pending_per_device=512)
        queue = FleetQueue(policy)
        block = np.arange(512 * 3, dtype=float).reshape(512, 3)
        queue.submit_block("d", block, np.arange(512))
        # Each new submit evicts the block's oldest row.
        for seq in range(512, 512 + 400):
            queue.submit(_req(device="d", seq=seq))
        segment = next(s for s in queue._segments if s.n_alive > 0)
        # The front segment was compacted: its storage holds (close to)
        # its live rows only, not the original 512-row block.
        assert len(segment.seqs) <= segment.n_alive * 2
        assert len(segment.seqs) < 512
        # Shedding semantics unchanged: freshest rows survive, in order.
        taken = queue.take(4096)
        assert taken.seqs.tolist() == list(range(400, 912))
        assert queue.shed_by_device == {"d": 400}

    def test_small_segments_not_copied(self):
        """Compaction must not churn small segments (copy cost > win)."""
        policy = BackpressurePolicy(max_pending=4096, max_pending_per_device=8)
        queue = FleetQueue(policy)
        queue.submit_block("d", np.zeros((16, 2)), np.arange(16))
        segment = queue._segments[0]
        storage_before = segment.features
        for seq in range(16, 24):
            queue.submit(_req(device="d", seq=seq))
        # 16-row segment: head never exceeds the 32-row threshold.
        assert segment.features is storage_before

    def test_take_reclaims_dead_segments_without_submits(self):
        """A consumer-only phase must still reclaim eviction debris."""
        policy = BackpressurePolicy(max_pending=4096, max_pending_per_device=1)
        queue = FleetQueue(policy)
        # Interleave two devices so per-device eviction kills mid-queue
        # segments (device "a" rows die behind live "b" rows).
        for seq in range(200):
            queue.submit(_req(device="a", seq=seq))
            queue.submit(_req(device="b", seq=seq))
        assert len(queue) == 2
        # Producer stops; only takes happen from here on.
        queue.take(1)
        assert len(queue._segments) <= 2 * 16 + 1
        queue.take(1)
        assert len(queue) == 0

    def test_compact_drops_empty_device_deques(self):
        queue = FleetQueue(BackpressurePolicy(max_pending=2))
        for d in range(100):
            queue.submit(_req(device=f"dev-{d}", seq=0))
        # 98 devices were fully evicted; their empty deques must not
        # accumulate once compaction runs.
        assert len(queue._by_device) <= 2 * 16 + 2


class TestExtractDevice:
    def test_moves_rows_in_admission_order(self):
        queue = FleetQueue()
        queue.submit_block("a", np.arange(9.0).reshape(3, 3), np.arange(3))
        queue.submit(_req(device="b", seq=0))
        queue.submit(_req(device="a", seq=3))
        features, seqs = queue.extract_device("a")
        assert seqs.tolist() == [0, 1, 2, 3]
        assert features.shape == (4, 3)
        np.testing.assert_array_equal(features[:3], np.arange(9.0).reshape(3, 3))
        assert queue.pending("a") == 0
        assert queue.total_shed == 0  # moved, not shed
        assert queue.take(10).device_ids.tolist() == ["b"]

    def test_unknown_or_empty_device(self):
        queue = FleetQueue()
        features, seqs = queue.extract_device("ghost")
        assert len(seqs) == 0
        queue.submit(_req(device="a", seq=0))
        queue.take(1)
        features, seqs = queue.extract_device("a")
        assert len(seqs) == 0

    def test_bookkeeping_survives_extraction(self):
        queue = FleetQueue()
        for seq in range(5):
            queue.submit(_req(device="a", seq=seq))
            queue.submit(_req(device="b", seq=seq))
        queue.extract_device("a")
        assert len(queue) == 5
        assert queue.take(100).seqs.tolist() == list(range(5))
        assert len(queue) == 0
