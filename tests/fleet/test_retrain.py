"""Tests for the live fleet retraining loop (FleetRetrainer).

Covers the acceptance contract of the histogram training backend PR:
the FleetMonitor runs a full monitor → flag → triage → label → retrain
→ recompile cycle in-process, and retraining is deterministic — same
seed and same analyst batches reproduce bitwise-identical trees.
"""

import numpy as np
import pytest

from repro.ml import RandomForestClassifier
from repro.fleet import BackpressurePolicy, FleetMonitor, FleetRetrainer
from repro.uncertainty import TrustedHMD


def _training_blobs(seed=0, n_per_class=150, d=6):
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [rng.normal(-2, 1, (n_per_class, d)), rng.normal(2, 1, (n_per_class, d))]
    )
    y = np.array([0] * n_per_class + [1] * n_per_class)
    return X, y


def _zero_day(seed, n, d=6):
    """A tight novel cluster far outside the training distribution."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d)) * 0.4
    X[:, 2] += 10.0
    return X


def _fitted_hmd(X, y, *, grower="hist", seed=0):
    return TrustedHMD(
        RandomForestClassifier(n_estimators=25, grower=grower, random_state=seed),
        threshold=0.40,
    ).fit(X, y)


@pytest.fixture()
def fleet_setup():
    X, y = _training_blobs()
    hmd = _fitted_hmd(X, y)
    monitor = FleetMonitor(
        hmd, batch_size=64, policy=BackpressurePolicy(max_pending=4096)
    )
    return X, y, hmd, monitor


class TestFullCycle:
    def test_monitor_flag_triage_label_retrain_recompile(self, fleet_setup):
        X, y, hmd, monitor = fleet_setup
        X_novel = _zero_day(seed=1, n=120)
        entropy_before = hmd.predictive_entropy(X_novel).mean()
        backend_before = hmd.ensemble_.compile()

        retrainer = FleetRetrainer(
            monitor, lambda cluster: 1, X, y, min_batch=20, random_state=0
        )
        for i, window in enumerate(X_novel[:80]):
            monitor.submit(f"dev-{i % 8}", window)
        outcomes = retrainer.drain()

        # The cycle ran: windows were flagged, clustered, labelled and
        # at least one warm retrain happened mid-drain.
        assert monitor.stats.n_flagged > 0
        assert any(o.n_clusters > 0 for o in outcomes)
        assert retrainer.loop.n_retrains >= 1
        assert len(monitor.forensics) == 0

        # Recompile happened in-place: new backend, same hmd object.
        backend_after = hmd.ensemble_.compile()
        assert backend_after is not backend_before

        # The refreshed model is confident on the held-out novel rows.
        held_out = X_novel[80:]
        entropy_after = hmd.predictive_entropy(held_out).mean()
        assert entropy_after < entropy_before
        verdict = hmd.analyze(held_out)
        assert verdict.rejection_rate < 0.5
        assert (verdict.predictions[verdict.accepted] == 1).all()

    def test_retrained_model_serves_next_batches(self, fleet_setup):
        X, y, hmd, monitor = fleet_setup
        X_novel = _zero_day(seed=2, n=160)
        retrainer = FleetRetrainer(
            monitor, lambda cluster: 1, X, y, min_batch=20, random_state=0
        )
        # First wave: mostly flagged, triggers the retrain.
        for i, window in enumerate(X_novel[:80]):
            monitor.submit(f"dev-{i % 4}", window)
        retrainer.drain()
        flagged_first = monitor.stats.n_flagged
        # Second wave of the same workload: the live-retrained model
        # accepts what it previously withheld.
        for i, window in enumerate(X_novel[80:]):
            monitor.submit(f"dev-{i % 4}", window)
        monitor.drain()
        flagged_second = monitor.stats.n_flagged - flagged_first
        assert flagged_second < flagged_first / 2

    def test_step_without_flags_is_noop(self, fleet_setup):
        X, y, _, monitor = fleet_setup
        retrainer = FleetRetrainer(monitor, lambda c: 0, X, y)
        outcome = retrainer.step()
        assert outcome.n_labelled == 0
        assert not outcome.retrained
        assert not outcome  # falsy when no retrain happened

    def test_labels_follow_triage_clusters(self, fleet_setup):
        X, y, _, monitor = fleet_setup
        # Two distinct novel clusters get distinct analyst labels.
        far_a = _zero_day(seed=3, n=30)
        far_b = _zero_day(seed=4, n=30)
        far_b[:, 2] -= 22.0  # mirror cluster on the other side

        def oracle(cluster):
            return 1 if cluster.centroid[2] > 0 else 0

        retrainer = FleetRetrainer(
            monitor, oracle, X, y, min_batch=10_000, n_clusters=2, random_state=0
        )
        for i, window in enumerate(np.vstack([far_a, far_b])):
            monitor.submit(f"dev-{i % 6}", window)
        monitor.drain()
        assert len(monitor.forensics) > 0
        outcome = retrainer.step()
        assert outcome.n_labelled > 0
        assert not outcome.retrained  # min_batch huge: labels only
        labels = np.asarray(retrainer.loop._pending_y[0])
        assert set(np.unique(labels)) <= {0, 1}
        assert len(np.unique(labels)) == 2


class TestRetrainDeterminism:
    """Same seed + same analyst batches ⇒ bitwise-identical trees."""

    def _run_cycle(self):
        X, y = _training_blobs(seed=5)
        hmd = _fitted_hmd(X, y, seed=9)
        monitor = FleetMonitor(
            hmd, batch_size=32, policy=BackpressurePolicy(max_pending=4096)
        )
        retrainer = FleetRetrainer(
            monitor, lambda cluster: 1, X, y, min_batch=15, random_state=3
        )
        X_novel = _zero_day(seed=6, n=60)
        for i, window in enumerate(X_novel):
            monitor.submit(f"dev-{i % 5}", window)
        retrainer.drain()
        return hmd, monitor

    def test_two_identical_cycles_identical_trees(self):
        hmd_a, monitor_a = self._run_cycle()
        hmd_b, monitor_b = self._run_cycle()
        members_a = hmd_a.ensemble_.estimators_
        members_b = hmd_b.ensemble_.estimators_
        assert len(members_a) == len(members_b)
        for ta, tb in zip(members_a, members_b):
            np.testing.assert_array_equal(ta.tree_.feature, tb.tree_.feature)
            np.testing.assert_array_equal(ta.tree_.threshold, tb.tree_.threshold)
            np.testing.assert_array_equal(ta.tree_.value, tb.tree_.value)
        # And therefore identical verdict streams.
        probe = _zero_day(seed=7, n=40)
        va = hmd_a.analyze(probe)
        vb = hmd_b.analyze(probe)
        np.testing.assert_array_equal(va.predictions, vb.predictions)
        np.testing.assert_array_equal(va.entropy, vb.entropy)
        np.testing.assert_array_equal(va.accepted, vb.accepted)
        assert monitor_a.stats.n_flagged == monitor_b.stats.n_flagged

    def test_exact_grower_hmd_falls_back_to_full_refit(self):
        X, y = _training_blobs(seed=8)
        hmd = _fitted_hmd(X, y, grower="exact", seed=0)
        assert not hmd.supports_partial_refit()
        monitor = FleetMonitor(hmd, batch_size=32)
        retrainer = FleetRetrainer(
            monitor, lambda cluster: 1, X, y, min_batch=10, random_state=0
        )
        for i, window in enumerate(_zero_day(seed=9, n=40)):
            monitor.submit(f"dev-{i % 3}", window)
        retrainer.drain()
        assert retrainer.loop.n_retrains >= 1
        # Full refit still lands the new knowledge.
        assert hmd.predictive_entropy(_zero_day(seed=10, n=20)).mean() < 0.4
