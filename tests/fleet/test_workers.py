"""Tests for the multi-process shard worker backend.

Three layers, bottom up:

1. :mod:`repro.fleet.shm` — the block-slot ring round-trips batches
   bitwise, and a model mapped from a shared publication produces
   bitwise-identical verdicts (both the table fast path and the pickle
   fallback);
2. snapshot versioning — :meth:`ShardedFleetMonitor.restore` (and the
   worker backend's) reject stale, foreign or inconsistent checkpoints
   before touching any state;
3. :class:`WorkerShardedFleetMonitor` — indistinguishable from the
   single monitor and the in-process facade over the same traffic
   (verdicts, reports, forensics, backpressure counters), through
   SIGKILL mid-drain, hung-worker heartbeats, republish-on-retrain and
   checkpoint round trips in both directions.

The process-spawning tests carry the ``mp`` marker (deselect with
``-m "not mp"`` on constrained runners) and use the ``fork`` start
method for speed; one smoke test covers the default ``spawn`` path.
"""

import os
import signal

import numpy as np
import pytest

from repro.fleet import (
    BackpressurePolicy,
    FaultPlan,
    FleetMonitor,
    ShardedFleetMonitor,
    ShardHealth,
    WorkerShardedFleetMonitor,
)
from repro.fleet.engine import batch_verdict_key
from repro.fleet.resilience import FaultEvent
from repro.fleet.report import device_report_key, rebind_queue_counters
from repro.fleet.sharding import SNAPSHOT_SCHEMA, PublishedHmd, ShardQueue
from repro.fleet.shm import ShmBlockRing, _unlink, map_publication, publish_model
from repro.ml import RandomForestClassifier
from repro.uncertainty import TrustedHMD
from tests.conftest import make_blobs

mp_mark = pytest.mark.mp


@pytest.fixture(scope="module")
def fitted_hmd():
    X, y = make_blobs(n_per_class=120, separation=4.0, seed=70)
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=20, random_state=0),
        threshold=0.4,
    ).fit(X, y)
    return X, y, hmd


def _arrivals(X, n_devices, rounds, seed=1):
    rng = np.random.default_rng(seed)
    return [
        (f"dev-{d:03d}", X[rng.integers(len(X))])
        for _ in range(rounds)
        for d in range(n_devices)
    ]


def _feed(monitor, arrivals):
    for device_id, _ in arrivals:
        monitor.register(device_id)
    for device_id, window in arrivals:
        monitor.submit(device_id, window)


def _forensic_stream(queue):
    return [
        (s.device_id, s.seq, s.prediction, s.entropy) for s in queue.snapshot()
    ]


# ---------------------------------------------------------------------------
# Shared-memory primitives
# ---------------------------------------------------------------------------


class TestShmBlockRing:
    def test_round_trips_blocks_bitwise(self):
        rng = np.random.default_rng(0)
        ring = ShmBlockRing(
            n_slots=3, capacity=8, n_features=5, pred_dtype="<i8"
        )
        try:
            attached = ShmBlockRing.attach(ring.spec())
            features = rng.normal(size=(6, 5))
            dev = rng.integers(0, 4, size=6)
            seqs = rng.integers(0, 100, size=6)
            n = ring.write_block(1, features, dev, seqs)
            assert n == 6
            slot = attached.slot(1)
            np.testing.assert_array_equal(slot["features"][:n], features)
            np.testing.assert_array_equal(slot["dev"][:n], dev)
            np.testing.assert_array_equal(slot["seqs"][:n], seqs)
            # Result columns written through the attached mapping come
            # back through the owner as fresh copies — once sealed with
            # the result checksum the worker would stamp.
            slot["predictions"][:n] = dev
            slot["entropy"][:n] = features[:, 0]
            slot["accepted"][:n] = (dev % 2).astype(np.uint8)
            attached.seal_results(1, n)
            predictions, entropy, accepted = ring.read_results(1, n)
            np.testing.assert_array_equal(predictions, dev)
            np.testing.assert_array_equal(entropy, features[:, 0])
            np.testing.assert_array_equal(accepted, dev % 2 == 1)
            assert accepted.dtype == bool
            slot["predictions"][:n] = 0  # copies must not alias the slot
            np.testing.assert_array_equal(predictions, dev)
            del slot  # views pin the mapping; drop before closing
            attached.close()
        finally:
            ring.close()

    def test_slots_are_independent(self):
        ring = ShmBlockRing(
            n_slots=2, capacity=4, n_features=2, pred_dtype="<i8"
        )
        try:
            a = np.ones((4, 2))
            b = np.full((4, 2), 7.0)
            ring.write_block(0, a, np.zeros(4, int), np.arange(4))
            ring.write_block(1, b, np.ones(4, int), np.arange(4))
            np.testing.assert_array_equal(ring.slot(0)["features"], a)
            np.testing.assert_array_equal(ring.slot(1)["features"], b)
        finally:
            ring.close()


class TestModelPublication:
    def test_mapped_tables_verdicts_bitwise(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        published = PublishedHmd(hmd)
        header, segment = publish_model(published, generation=3)
        assert header["mode"] == "tables"
        mapped = map_publication(header)
        try:
            assert mapped.generation == 3
            for n in (1, 37, 400):
                Xq = X[:n]
                np.testing.assert_array_equal(
                    np.column_stack(mapped.verdict(Xq)),
                    np.column_stack(published.verdict(Xq)),
                )
        finally:
            mapped.close()
            segment.close()
            _unlink(segment)

    def test_mapped_pca_front_verdicts_bitwise(self):
        X, y = make_blobs(n_per_class=100, separation=2.0, seed=12)
        hmd = TrustedHMD(
            RandomForestClassifier(n_estimators=10, random_state=0),
            threshold=0.35,
            n_components=2,
        ).fit(X, y)
        published = PublishedHmd(hmd)
        header, segment = publish_model(published)
        mapped = map_publication(header)
        try:
            np.testing.assert_array_equal(
                np.column_stack(mapped.verdict(X)),
                np.column_stack(published.verdict(X)),
            )
        finally:
            mapped.close()
            segment.close()
            _unlink(segment)

    def test_multiclass_pickle_fallback_bitwise(self):
        rng = np.random.default_rng(5)
        X = np.vstack(
            [rng.normal(loc, 1.0, size=(60, 4)) for loc in (0.0, 3.0, 6.0)]
        )
        y = np.repeat([0, 1, 2], 60)
        hmd = TrustedHMD(
            RandomForestClassifier(n_estimators=12, random_state=0),
            threshold=0.8,
        ).fit(X, y)
        published = PublishedHmd(hmd)
        header, segment = publish_model(published)
        assert header["mode"] == "pickle" and segment is None
        mapped = map_publication(header)
        np.testing.assert_array_equal(
            np.column_stack(mapped.verdict(X)),
            np.column_stack(published.verdict(X)),
        )
        mapped.close()


# ---------------------------------------------------------------------------
# Snapshot versioning
# ---------------------------------------------------------------------------


class TestSnapshotVersioning:
    def test_snapshot_carries_schema_tag(self, fitted_hmd):
        _, _, hmd = fitted_hmd
        fleet = ShardedFleetMonitor(hmd, n_shards=2)
        assert fleet.snapshot()["schema"] == SNAPSHOT_SCHEMA

    def test_rejects_unversioned_payload(self, fitted_hmd):
        _, _, hmd = fitted_hmd
        state = ShardedFleetMonitor(hmd, n_shards=2).snapshot()
        del state["schema"]
        with pytest.raises(ValueError, match="snapshot schema"):
            ShardedFleetMonitor.restore(hmd, state)

    def test_rejects_foreign_schema(self, fitted_hmd):
        _, _, hmd = fitted_hmd
        state = ShardedFleetMonitor(hmd, n_shards=2).snapshot()
        state["schema"] = "repro.fleet.sharded/999"
        with pytest.raises(ValueError, match="repro.fleet.sharded/999"):
            ShardedFleetMonitor.restore(hmd, state)

    def test_rejects_non_dict_payload(self, fitted_hmd):
        _, _, hmd = fitted_hmd
        with pytest.raises(ValueError, match="must be a dict"):
            ShardedFleetMonitor.restore(hmd, [1, 2, 3])

    def test_rejects_truncated_payload(self, fitted_hmd):
        _, _, hmd = fitted_hmd
        state = ShardedFleetMonitor(hmd, n_shards=2).snapshot()
        del state["shards"]
        with pytest.raises(ValueError, match="missing required keys"):
            ShardedFleetMonitor.restore(hmd, state)

    def test_rejects_shard_count_mismatch(self, fitted_hmd):
        _, _, hmd = fitted_hmd
        state = ShardedFleetMonitor(hmd, n_shards=3).snapshot()
        state["n_shards"] = 2
        with pytest.raises(ValueError, match="mismatched"):
            ShardedFleetMonitor.restore(hmd, state)

    def test_rejects_incompatible_policy(self, fitted_hmd):
        _, _, hmd = fitted_hmd
        state = ShardedFleetMonitor(hmd, n_shards=2).snapshot()
        state["policy"]["no_such_knob"] = 1
        with pytest.raises(ValueError, match="BackpressurePolicy"):
            ShardedFleetMonitor.restore(hmd, state)

    def test_worker_restore_validates_before_spawning(self, fitted_hmd):
        _, _, hmd = fitted_hmd
        with pytest.raises(ValueError, match="snapshot schema"):
            WorkerShardedFleetMonitor.restore(hmd, {"schema": "bogus"})


# ---------------------------------------------------------------------------
# The multi-process facade
# ---------------------------------------------------------------------------


def _worker_fleet(hmd, **kwargs):
    kwargs.setdefault("mp_context", "fork")
    return WorkerShardedFleetMonitor(hmd, **kwargs)


@mp_mark
class TestWorkerEquivalence:
    def test_matches_single_monitor_and_inprocess_facade(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=12, rounds=8)
        single = FleetMonitor(hmd, batch_size=64)
        _feed(single, arrivals)
        single_results = single.drain()
        inproc = ShardedFleetMonitor(hmd, n_shards=3, batch_size=64)
        _feed(inproc, arrivals)
        inproc_results = inproc.drain()
        with _worker_fleet(hmd, n_shards=3, batch_size=64) as fleet:
            _feed(fleet, arrivals)
            results = fleet.drain()
            key = batch_verdict_key(results)
            assert key == batch_verdict_key(single_results)
            assert key == batch_verdict_key(inproc_results)
            report = device_report_key(fleet.report())
            assert report == device_report_key(single.report())
            assert report == device_report_key(inproc.report())
            assert sorted(_forensic_stream(fleet.forensics)) == sorted(
                _forensic_stream(single.forensics)
            )
            merged = fleet.stats
            assert (merged.n_seen, merged.n_flagged) == (
                single.stats.n_seen,
                single.stats.n_flagged,
            )

    def test_pipelined_drain_matches_process_batch(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=10, rounds=12, seed=3)
        with _worker_fleet(
            hmd, n_shards=2, batch_size=32, pipeline_depth=3
        ) as deep:
            _feed(deep, arrivals)
            deep_results = deep.drain()
        with _worker_fleet(
            hmd, n_shards=2, batch_size=32, pipeline_depth=1
        ) as shallow:
            _feed(shallow, arrivals)
            shallow_results = []
            while True:
                result = shallow.process_batch()
                if result is None:
                    break
                shallow_results.append(result)
        assert batch_verdict_key(deep_results) == batch_verdict_key(
            shallow_results
        )

    def test_backpressure_counters_track_parent_queues(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        policy = BackpressurePolicy(
            max_pending=64, max_pending_per_device=6, shed="drop_oldest"
        )
        arrivals = _arrivals(X, n_devices=8, rounds=20, seed=4)
        reference = ShardedFleetMonitor(
            hmd, n_shards=2, batch_size=32, policy=policy
        )
        _feed(reference, arrivals)
        with _worker_fleet(
            hmd, n_shards=2, batch_size=32, policy=policy
        ) as fleet:
            _feed(fleet, arrivals)
            assert fleet.pending == reference.pending
            # Reports before any drain: shed/pending come from the
            # parent queues, verdict counters are all zero.
            assert device_report_key(fleet.report()) == device_report_key(
                reference.report()
            )
            fleet.drain()
            reference.drain()
            assert device_report_key(fleet.report()) == device_report_key(
                reference.report()
            )

    def test_max_batches_caps_the_drain(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        with _worker_fleet(hmd, n_shards=2, batch_size=16) as fleet:
            _feed(fleet, _arrivals(X, n_devices=6, rounds=40, seed=5))
            results = fleet.drain(max_batches=2)
            assert len(results) == 2
            assert fleet.pending > 0

    def test_spawn_context_smoke(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=6, rounds=4, seed=6)
        single = FleetMonitor(hmd, batch_size=64)
        _feed(single, arrivals)
        reference = single.drain()
        with WorkerShardedFleetMonitor(
            hmd, n_shards=2, batch_size=64, mp_context="spawn"
        ) as fleet:
            _feed(fleet, arrivals)
            assert batch_verdict_key(fleet.drain()) == batch_verdict_key(
                reference
            )

    def test_rebalance_is_explicitly_unsupported(self, fitted_hmd):
        _, _, hmd = fitted_hmd
        with _worker_fleet(hmd, n_shards=2) as fleet:
            with pytest.raises(NotImplementedError, match="snapshot"):
                fleet.rebalance(4)


@mp_mark
class TestSupervision:
    def test_sigkill_mid_drain_resumes_identically(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=16, rounds=30, seed=2)
        reference = ShardedFleetMonitor(hmd, n_shards=3, batch_size=64)
        _feed(reference, arrivals)
        reference_results = reference.drain()
        with _worker_fleet(
            hmd,
            n_shards=3,
            batch_size=64,
            checkpoint_every=3,
            worker_timeout=30,
        ) as fleet:
            _feed(fleet, arrivals)
            results = []
            killed = False
            while True:
                result = fleet.process_batch()
                if result is None:
                    break
                results.append(result)
                if len(results) == 2 and not killed:
                    os.kill(fleet.handles[1].proc.pid, signal.SIGKILL)
                    killed = True
            assert killed
            assert batch_verdict_key(results) == batch_verdict_key(
                reference_results
            )
            assert device_report_key(fleet.report()) == device_report_key(
                reference.report()
            )
            assert sorted(_forensic_stream(fleet.forensics)) == sorted(
                _forensic_stream(reference.forensics)
            )

    def test_heartbeat_restarts_dead_worker(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=8, rounds=6, seed=7)
        single = FleetMonitor(hmd, batch_size=64)
        _feed(single, arrivals)
        reference = single.drain()
        with _worker_fleet(
            hmd, n_shards=2, batch_size=64, checkpoint_every=2
        ) as fleet:
            assert fleet.heartbeat() == []
            os.kill(fleet.handles[0].proc.pid, signal.SIGKILL)
            assert fleet.heartbeat() == [0]
            assert fleet.heartbeat() == []
            # The replacement worker serves traffic with no state loss.
            _feed(fleet, arrivals)
            assert batch_verdict_key(fleet.drain()) == batch_verdict_key(
                reference
            )

    def test_gives_up_after_max_restarts(self, fitted_hmd):
        _, _, hmd = fitted_hmd
        with _worker_fleet(
            hmd, n_shards=1, max_restarts=1, worker_timeout=5
        ) as fleet:
            handle = fleet.handles[0]
            with pytest.raises(RuntimeError, match="giving up"):
                for _ in range(4):
                    os.kill(handle.proc.pid, signal.SIGKILL)
                    handle.proc.join(timeout=5)
                    fleet.heartbeat()
                    # A successful restart resets the failure budget, so
                    # keep killing until two failures land back to back.

    def test_restart_storm_fails_over_mid_pipelined_drain(self, fitted_hmd):
        # A shard crashing on the first block of every incarnation trips
        # the circuit breaker while pipelined epochs are still in flight
        # on every shard; its devices must fail over to survivors with
        # zero lost or duplicated verdicts.
        X, _, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=24, rounds=10, seed=21)
        reference = ShardedFleetMonitor(hmd, n_shards=4, batch_size=32)
        _feed(reference, arrivals)
        ref_results = reference.drain()
        storm = FaultPlan(
            events=tuple(
                FaultEvent(shard_id=1, life=life, block=0, kind="crash")
                for life in range(8)
            )
        )
        with _worker_fleet(
            hmd, n_shards=4, batch_size=32, pipeline_depth=3,
            max_restarts=1, chaos=storm,
        ) as fleet:
            _feed(fleet, arrivals)
            results = fleet.drain()
            assert batch_verdict_key(results) == batch_verdict_key(
                ref_results
            )
            health = {r.shard_id: r.health for r in fleet.shard_health()}
            assert health[1] is ShardHealth.DEAD
            assert all(
                health[s] is not ShardHealth.DEAD for s in (0, 2, 3)
            )
            assert device_report_key(fleet.report()) == device_report_key(
                reference.report()
            )

    def test_republish_on_retrain_propagates_without_restart(self):
        X, y = make_blobs(n_per_class=120, separation=4.0, seed=71)
        hmd = TrustedHMD(
            RandomForestClassifier(n_estimators=20, random_state=0),
            threshold=0.4,
        ).fit(X, y)
        arrivals = _arrivals(X, n_devices=10, rounds=6, seed=8)
        reference = ShardedFleetMonitor(hmd, n_shards=2, batch_size=64)
        with _worker_fleet(hmd, n_shards=2, batch_size=64) as fleet:
            _feed(reference, arrivals)
            _feed(fleet, arrivals)
            assert batch_verdict_key(reference.drain()) == batch_verdict_key(
                fleet.drain()
            )
            pids = [handle.proc.pid for handle in fleet.handles]
            # Warm retrain: both facades see the same refreshed model.
            hmd.fit(X[::2], y[::2])
            tail = _arrivals(X, n_devices=10, rounds=6, seed=9)
            _feed(reference, tail)
            _feed(fleet, tail)
            assert batch_verdict_key(reference.drain()) == batch_verdict_key(
                fleet.drain()
            )
            assert fleet._generation == 1
            # Same processes throughout — republish, not restart.
            assert [handle.proc.pid for handle in fleet.handles] == pids
            assert device_report_key(fleet.report()) == device_report_key(
                reference.report()
            )


@mp_mark
class TestWorkerCheckpointing:
    def _driven_fleet(self, hmd, X):
        fleet = _worker_fleet(
            hmd, n_shards=3, batch_size=64, checkpoint_every=2
        )
        _feed(fleet, _arrivals(X, n_devices=12, rounds=10, seed=10))
        fleet.drain()
        # Leave a live backlog so the checkpoint carries queued rows.
        _feed(fleet, _arrivals(X, n_devices=12, rounds=2, seed=11))
        return fleet

    def test_round_trips_between_both_backends(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        tail = _arrivals(X, n_devices=12, rounds=4, seed=12)
        with self._driven_fleet(hmd, X) as fleet:
            state = fleet.snapshot()
            assert state["schema"] == SNAPSHOT_SCHEMA
        inproc = ShardedFleetMonitor.restore(hmd, state)
        _feed(inproc, tail)
        inproc_results = inproc.drain()
        with WorkerShardedFleetMonitor.restore(
            hmd, state, mp_context="fork"
        ) as resumed:
            _feed(resumed, tail)
            assert batch_verdict_key(resumed.drain()) == batch_verdict_key(
                inproc_results
            )
            assert device_report_key(resumed.report()) == device_report_key(
                inproc.report()
            )

    def test_inprocess_checkpoint_restores_into_workers(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=10, rounds=8, seed=13)
        tail = _arrivals(X, n_devices=10, rounds=4, seed=14)
        source = ShardedFleetMonitor(hmd, n_shards=2, batch_size=64)
        _feed(source, arrivals)
        source.drain()
        _feed(source, tail[:20])
        state = source.snapshot()
        _feed(source, tail[20:])
        reference = source.drain()
        with WorkerShardedFleetMonitor.restore(
            hmd, state, mp_context="fork"
        ) as resumed:
            _feed(resumed, tail[20:])
            assert batch_verdict_key(resumed.drain()) == batch_verdict_key(
                reference
            )
            assert device_report_key(resumed.report()) == device_report_key(
                source.report()
            )

    def test_checkpoint_barrier_races_republish(self):
        # Snapshot taken between a warm retrain and the republish that
        # propagates it: the checkpoint barrier runs with pipelined
        # epochs in flight against the old model generation, and the
        # restored fleet must resume on the new one.
        X, y = make_blobs(n_per_class=120, separation=4.0, seed=72)
        hmd = TrustedHMD(
            RandomForestClassifier(n_estimators=20, random_state=0),
            threshold=0.4,
        ).fit(X, y)
        arrivals = _arrivals(X, n_devices=12, rounds=8, seed=22)
        tail = _arrivals(X, n_devices=12, rounds=4, seed=23)
        reference = ShardedFleetMonitor(hmd, n_shards=2, batch_size=32)
        with _worker_fleet(
            hmd, n_shards=2, batch_size=32, pipeline_depth=3,
            checkpoint_every=2,
        ) as fleet:
            _feed(reference, arrivals)
            _feed(fleet, arrivals)
            ref_head = reference.drain(max_batches=4)
            head = fleet.drain(max_batches=4)
            assert batch_verdict_key(head) == batch_verdict_key(ref_head)
            hmd.fit(X[::2], y[::2])  # republish pending, not yet shipped
            state = fleet.snapshot()
            ref_tail = reference.drain()
            assert batch_verdict_key(fleet.drain()) == batch_verdict_key(
                ref_tail
            )
        # The checkpoint predates the republish; restoring it against
        # the retrained model must publish the new generation and stay
        # equivalent to an in-process restore of the same state.
        inproc = ShardedFleetMonitor.restore(hmd, state)
        _feed(inproc, tail)
        inproc_results = inproc.drain()
        with WorkerShardedFleetMonitor.restore(
            hmd, state, mp_context="fork"
        ) as resumed:
            _feed(resumed, tail)
            assert batch_verdict_key(resumed.drain()) == batch_verdict_key(
                inproc_results
            )
            assert device_report_key(resumed.report()) == device_report_key(
                inproc.report()
            )

    def test_restore_from_checkpoint_taken_during_rebalance(
        self, fitted_hmd
    ):
        # The in-process facade rebalances with a live backlog; the
        # snapshot taken mid-rebalance (migrated devices, split queues)
        # must restore into the worker backend and keep verdicts
        # identical to the source continuing in process.
        X, _, hmd = fitted_hmd
        arrivals = _arrivals(X, n_devices=12, rounds=8, seed=24)
        tail = _arrivals(X, n_devices=12, rounds=4, seed=25)
        source = ShardedFleetMonitor(hmd, n_shards=2, batch_size=64)
        _feed(source, arrivals)
        source.drain()
        _feed(source, tail[:24])  # backlog straddles the rebalance
        moves = source.rebalance(3)
        assert moves  # the checkpoint really is mid-migration
        state = source.snapshot()
        _feed(source, tail[24:])
        reference = source.drain()
        with WorkerShardedFleetMonitor.restore(
            hmd, state, mp_context="fork"
        ) as resumed:
            _feed(resumed, tail[24:])
            assert batch_verdict_key(resumed.drain()) == batch_verdict_key(
                reference
            )
            assert device_report_key(resumed.report()) == device_report_key(
                source.report()
            )
