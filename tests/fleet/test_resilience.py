"""Tests for deterministic fault injection and fleet degradation.

Two layers:

1. unit tests over the resilience vocabulary — :class:`FaultPlan`
   determinism and pickling, the shm ring's request/result checksum
   lifecycle, the bounded :class:`QuarantineStore`, deterministic
   failover routing (:meth:`ShardRouter.disable`), the exactly-once
   window audit and the report/health rendering;
2. process-spawning chaos campaigns (``mp`` + ``chaos`` markers):
   seeded kill/hang/corrupt schedules, poison-window quarantine with
   bisection, crash-storm failover onto survivors and the atexit sweep
   that reaps owned segments on abnormal supervisor teardown.

Every campaign asserts the chaos-hardening contract: non-quarantined
verdicts bitwise identical to a fault-free in-process run, and zero
windows silently lost (``account_windows`` comes back empty).
"""

import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.fleet import (
    FaultPlan,
    QuarantinedWindow,
    QuarantineStore,
    ShardedFleetMonitor,
    ShardHealth,
    ShardHealthReport,
    WorkerShardedFleetMonitor,
    account_windows,
)
from repro.fleet.engine import batch_verdict_key, batch_window_keys
from repro.fleet.report import device_report_key
from repro.fleet.resilience import FaultEvent
from repro.fleet.sharding import ShardRouter
from repro.fleet.shm import (
    ShmBlockRing,
    ShmIntegrityError,
    active_owned_segments,
)
from repro.ml import RandomForestClassifier
from repro.uncertainty import TrustedHMD
from tests.conftest import make_blobs

mp_mark = pytest.mark.mp
chaos_mark = pytest.mark.chaos


@pytest.fixture(scope="module")
def fitted_hmd():
    X, y = make_blobs(n_per_class=120, separation=4.0, seed=70)
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=20, random_state=0),
        threshold=0.4,
    ).fit(X, y)
    return X, y, hmd


def _arrivals(X, n_devices, rounds, seed=1):
    rng = np.random.default_rng(seed)
    return [
        (f"dev-{d:03d}", X[rng.integers(len(X))])
        for _ in range(rounds)
        for d in range(n_devices)
    ]


def _feed(monitor, arrivals):
    for device_id, _ in arrivals:
        monitor.register(device_id)
    for device_id, window in arrivals:
        monitor.submit(device_id, window)


@pytest.fixture(scope="module")
def reference_run(fitted_hmd):
    """Fault-free in-process drain of the canonical chaos traffic."""
    X, _, hmd = fitted_hmd
    arrivals = _arrivals(X, n_devices=24, rounds=12)
    ref = ShardedFleetMonitor(hmd, n_shards=4, batch_size=64)
    _feed(ref, arrivals)
    results = ref.drain()
    return {
        "arrivals": arrivals,
        "verdicts": batch_verdict_key(results),
        "report": device_report_key(ref.report()),
        "submitted": batch_window_keys(results),
    }


def _chaos_fleet(hmd, plan, **kwargs):
    kwargs.setdefault("mp_context", "fork")
    kwargs.setdefault("worker_timeout", 3.0)
    kwargs.setdefault("checkpoint_every", 4)
    return WorkerShardedFleetMonitor(
        hmd, n_shards=4, batch_size=64, chaos=plan, **kwargs
    )


# ---------------------------------------------------------------------------
# FaultPlan: deterministic schedules
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_generate_is_deterministic(self):
        a = FaultPlan.generate(11, n_shards=4, corruptions=3)
        b = FaultPlan.generate(11, n_shards=4, corruptions=3)
        assert a.events == b.events
        assert a.corrupt == b.corrupt
        assert a.counts() == b.counts()

    def test_different_seeds_differ(self):
        a = FaultPlan.generate(11, n_shards=4, crashes=4, slows=4)
        b = FaultPlan.generate(12, n_shards=4, crashes=4, slows=4)
        assert a.events != b.events

    def test_counts_summarise_campaign(self):
        plan = FaultPlan.generate(
            0, n_shards=2, crashes=3, hangs=1, slows=2, corruptions=2,
            poison=[("dev-000", 5)],
        )
        counts = plan.counts()
        assert counts["crash"] == 3
        assert counts["hang"] == 1
        assert counts["slow"] == 2
        # Corruption sites are a set; collisions may dedupe below the
        # requested count but never exceed it.
        assert 1 <= counts["corrupt"] <= 2
        assert counts["poison"] == 1

    def test_pickle_round_trip(self):
        plan = FaultPlan.generate(
            7, n_shards=4, poison=[("dev-003", 2)], hang_seconds=1.5
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == plan.seed
        assert clone.events == plan.events
        assert clone.corrupt == plan.corrupt
        assert clone.poison == plan.poison
        assert clone.hang_seconds == plan.hang_seconds

    def test_events_key_on_shard_life_block(self):
        event = FaultEvent(shard_id=1, life=0, block=3, kind="crash")
        plan = FaultPlan(events=(event,))
        assert plan.worker_event(1, 0, 3) is event
        assert plan.worker_event(1, 1, 3) is None  # next incarnation
        assert plan.worker_event(0, 0, 3) is None

    def test_rejects_unknown_fault_kind(self):
        bad = FaultEvent(shard_id=0, life=0, block=0, kind="meltdown")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan(events=(bad,))

    def test_poison_rows_maps_through_registry(self):
        plan = FaultPlan(poison=[("dev-b", 7), ("dev-c", 9)])
        names = ["dev-a", "dev-b", "dev-c"]
        dev = np.array([0, 1, 2, 1])
        seqs = np.array([7, 7, 9, 8])
        assert plan.poison_rows(names, dev, seqs) == [1, 2]
        assert FaultPlan().poison_rows(names, dev, seqs) == []

    def test_should_corrupt_keys_on_shard_and_epoch(self):
        plan = FaultPlan(corrupt=[(2, 5)])
        assert plan.should_corrupt(2, 5)
        assert not plan.should_corrupt(2, 6)
        assert not plan.should_corrupt(1, 5)


# ---------------------------------------------------------------------------
# Shm ring integrity checksums
# ---------------------------------------------------------------------------


class TestRingIntegrity:
    def _ring(self):
        return ShmBlockRing(
            n_slots=2, capacity=8, n_features=4, pred_dtype="<i8"
        )

    def test_checksum_lifecycle(self):
        rng = np.random.default_rng(3)
        ring = self._ring()
        try:
            n = ring.write_block(
                0,
                rng.normal(size=(5, 4)),
                rng.integers(0, 3, size=5),
                rng.integers(0, 50, size=5),
            )
            assert ring.verify_block(0, n)
            ring.corrupt_slot(0)
            assert not ring.verify_block(0, n)
            # Result columns: sealed reads pass, unsealed / tampered fail.
            slot = ring.slot(0)
            slot["predictions"][:n] = 1
            slot["entropy"][:n] = 0.5
            slot["accepted"][:n] = 1
            with pytest.raises(ShmIntegrityError):
                ring.read_results(0, n)  # never sealed
            ring.seal_results(0, n)
            predictions, entropy, accepted = ring.read_results(0, n)
            assert predictions.tolist() == [1] * n
            assert accepted.dtype == bool
            slot["entropy"][0] = 9.0  # tamper after sealing
            with pytest.raises(ShmIntegrityError):
                ring.read_results(0, n)
            del slot
        finally:
            ring.close()

    def test_corruption_is_slot_local(self):
        rng = np.random.default_rng(4)
        ring = self._ring()
        try:
            for index in (0, 1):
                ring.write_block(
                    index,
                    rng.normal(size=(6, 4)),
                    rng.integers(0, 3, size=6),
                    rng.integers(0, 50, size=6),
                )
            ring.corrupt_slot(0)
            assert not ring.verify_block(0, 6)
            assert ring.verify_block(1, 6)
            # Rewriting the corrupted slot restamps its checksum.
            ring.write_block(
                0,
                rng.normal(size=(6, 4)),
                rng.integers(0, 3, size=6),
                rng.integers(0, 50, size=6),
            )
            assert ring.verify_block(0, 6)
        finally:
            ring.close()

    def test_owned_segment_registry(self):
        before = set(active_owned_segments())
        ring = self._ring()
        name = ring.name
        assert name in active_owned_segments()
        attached = ShmBlockRing.attach(ring.spec())
        attached.close()  # non-owner close must not touch the registry
        assert name in active_owned_segments()
        ring.close()
        assert name not in active_owned_segments()
        assert set(active_owned_segments()) == before


# ---------------------------------------------------------------------------
# Quarantine store and the exactly-once audit
# ---------------------------------------------------------------------------


def _window(i):
    return QuarantinedWindow(
        device_id=f"dev-{i:03d}",
        seq=i,
        features=np.zeros(3),
        shard_id=0,
        epoch=i,
        reason="test",
    )


class TestQuarantineStore:
    def test_bounded_with_lifetime_accounting(self):
        store = QuarantineStore(maxlen=4)
        for i in range(10):
            store.push(_window(i))
        assert len(store) == 4
        assert store.total_quarantined == 10
        retained = [w.seq for w in store.snapshot()]
        assert retained == [6, 7, 8, 9]  # oldest evicted first
        # Keys survive eviction — accounting never loses a window.
        assert store.keys() == {(f"dev-{i:03d}", i) for i in range(10)}

    def test_account_windows_flags_silent_loss(self):
        submitted = {("dev-a", 0), ("dev-a", 1), ("dev-b", 0)}
        verdicts = {("dev-a", 0)}
        quarantined = {("dev-b", 0)}
        assert account_windows(submitted, verdicts, quarantined) == [
            ("dev-a", 1)
        ]
        assert account_windows(submitted, verdicts, quarantined, shed=1) == []
        assert account_windows(submitted, submitted, set()) == []


# ---------------------------------------------------------------------------
# Failover routing
# ---------------------------------------------------------------------------


class TestRouterDisable:
    def test_remaps_dead_bucket_onto_survivors(self):
        router = ShardRouter(4)
        devices = [f"dev-{i:03d}" for i in range(64)]
        before = {d: router.shard_of(d) for d in devices}
        survivors = router.disable(1)
        assert survivors == [0, 2, 3]
        assert router.disabled == frozenset({1})
        after = {d: router.shard_of(d) for d in devices}
        for device, shard in after.items():
            assert shard != 1
            if before[device] != 1:
                assert shard == before[device]  # survivors undisturbed

    def test_remap_is_deterministic_for_unseen_devices(self):
        seen = ShardRouter(4)
        for i in range(32):
            seen.shard_of(f"dev-{i:03d}")  # warm the cache pre-failure
        seen.disable(1)
        fresh = ShardRouter(4)
        fresh.disable(1)
        for i in range(64):  # includes ids neither router has seen
            device = f"dev-{i:03d}"
            assert seen.shard_of(device) == fresh.shard_of(device)

    def test_refuses_to_disable_last_shard(self):
        router = ShardRouter(2)
        router.disable(0)
        with pytest.raises(ValueError, match="last live shard"):
            router.disable(1)
        with pytest.raises(ValueError, match="out of range"):
            ShardRouter(2).disable(5)


# ---------------------------------------------------------------------------
# Health and report rendering
# ---------------------------------------------------------------------------


class TestHealthRendering:
    def test_health_report_as_text(self):
        row = ShardHealthReport(
            shard_id=2,
            health=ShardHealth.DEGRADED,
            restarts=1,
            total_restarts=3,
            heartbeat_age=0.25,
        )
        assert row.as_text() == (
            "shard 2: degraded  restarts=3  heartbeat_age=0.2s"
        )


# ---------------------------------------------------------------------------
# Chaos campaigns (process-spawning)
# ---------------------------------------------------------------------------


@mp_mark
@chaos_mark
class TestChaosCampaigns:
    def test_kill_hang_corrupt_campaign_is_equivalent(
        self, fitted_hmd, reference_run
    ):
        _, _, hmd = fitted_hmd
        plan = FaultPlan.generate(
            7, n_shards=4, crashes=3, hangs=1, slows=2, corruptions=2,
            horizon=10, hang_seconds=1.5,
        )
        with _chaos_fleet(hmd, plan) as fleet:
            _feed(fleet, reference_run["arrivals"])
            results = fleet.drain()
            assert batch_verdict_key(results) == reference_run["verdicts"]
            report = fleet.report()
            assert device_report_key(report) == reference_run["report"]
            missing = account_windows(
                reference_run["submitted"],
                batch_window_keys(results),
                fleet.quarantine.keys(),
            )
            assert not missing, f"silently lost windows: {missing[:5]}"
            # The campaign actually fired: restarts are visible in the
            # health rows and the rendered report.
            assert sum(r.total_restarts for r in report.shard_health) >= 1
            text = report.as_text()
            assert "shard" in text and "restarts" in text
            assert "healthy" in text or "degraded" in text or "dead" in text

    def test_poison_windows_quarantined_exactly(
        self, fitted_hmd, reference_run
    ):
        _, _, hmd = fitted_hmd
        poison = [("dev-003", 2), ("dev-011", 7)]
        plan = FaultPlan(seed=0, poison=poison)
        with _chaos_fleet(hmd, plan) as fleet:
            _feed(fleet, reference_run["arrivals"])
            results = fleet.drain()
            quarantined = fleet.quarantine.keys()
            assert quarantined == set(poison)
            assert account_windows(
                reference_run["submitted"],
                batch_window_keys(results),
                quarantined,
            ) == []
            # Bisection kept every healthy row: the surviving verdicts
            # are bitwise identical to the fault-free run, and only the
            # poison keys are absent.
            verdicts = batch_verdict_key(results)
            for key, value in verdicts.items():
                assert reference_run["verdicts"][key] == value
            assert (
                set(reference_run["verdicts"]) - set(verdicts) == quarantined
            )
            report = fleet.report()
            assert report.n_quarantined == len(poison)
            assert f"quarantined={len(poison)}" in report.as_text()
            for window in fleet.quarantine.snapshot():
                assert (window.device_id, window.seq) in quarantined
                assert "bisection" in window.reason

    def test_crash_storm_fails_over_to_survivors(
        self, fitted_hmd, reference_run
    ):
        _, _, hmd = fitted_hmd
        # Shard 1 crashes on its first block of every incarnation: the
        # breaker must open and its devices fail over to survivors.
        events = tuple(
            FaultEvent(shard_id=1, life=life, block=0, kind="crash")
            for life in range(8)
        )
        plan = FaultPlan(seed=0, events=events)
        with _chaos_fleet(hmd, plan, max_restarts=2) as fleet:
            _feed(fleet, reference_run["arrivals"])
            results = fleet.drain()
            assert batch_verdict_key(results) == reference_run["verdicts"]
            report = fleet.report()
            health = {r.shard_id: r.health for r in report.shard_health}
            assert health[1] is ShardHealth.DEAD
            assert health[0] is not ShardHealth.DEAD
            assert device_report_key(report) == reference_run["report"]
            assert account_windows(
                reference_run["submitted"],
                batch_window_keys(results),
                set(),
            ) == []
            # The degraded fleet keeps draining on the survivors.
            for device_id, window in reference_run["arrivals"][:48]:
                fleet.submit(device_id, window)
            more = fleet.drain()
            assert sum(len(r.seqs) for r in more) == 48

    def test_hung_worker_restarted_and_replayed(
        self, fitted_hmd, reference_run
    ):
        _, _, hmd = fitted_hmd
        # A genuine hang — far longer than the heartbeat timeout — on
        # shard 0's first incarnation.  The supervisor must declare the
        # worker dead, restart it and replay; verdicts stay identical.
        plan = FaultPlan(
            events=(FaultEvent(shard_id=0, life=0, block=1, kind="hang"),),
            hang_seconds=60.0,
        )
        with _chaos_fleet(hmd, plan, worker_timeout=1.0) as fleet:
            _feed(fleet, reference_run["arrivals"])
            results = fleet.drain()
            assert batch_verdict_key(results) == reference_run["verdicts"]
            report = fleet.report()
            restarts = {
                r.shard_id: r.total_restarts for r in report.shard_health
            }
            assert restarts[0] >= 1

    def test_breaker_raises_without_survivors(self, fitted_hmd):
        X, _, hmd = fitted_hmd
        # Single shard, crash on every incarnation's first block: no
        # survivor to fail over to, so the breaker must surface the
        # failure instead of spinning forever.
        events = tuple(
            FaultEvent(shard_id=0, life=life, block=0, kind="crash")
            for life in range(8)
        )
        plan = FaultPlan(events=events)
        fleet = WorkerShardedFleetMonitor(
            hmd, n_shards=1, batch_size=64, mp_context="fork",
            worker_timeout=3.0, max_restarts=2, chaos=plan,
        )
        try:
            _feed(fleet, _arrivals(X, n_devices=6, rounds=2))
            with pytest.raises(RuntimeError, match="giving up"):
                fleet.drain()
        finally:
            fleet.close()


# ---------------------------------------------------------------------------
# Abnormal-teardown segment reaping (satellite: shm leak fix)
# ---------------------------------------------------------------------------


_LEAK_SCRIPT = """
import sys
from repro.fleet.shm import ShmBlockRing, publish_model
from repro.fleet.sharding import PublishedHmd
from repro.ml import RandomForestClassifier
from repro.uncertainty import TrustedHMD
from tests.conftest import make_blobs

X, y = make_blobs(n_per_class=40, separation=4.0, seed=0)
hmd = TrustedHMD(
    RandomForestClassifier(n_estimators=5, random_state=0), threshold=0.4
).fit(X, y)
ring = ShmBlockRing(n_slots=2, capacity=8, n_features=X.shape[1],
                    pred_dtype="<i8")
header, segment = publish_model(PublishedHmd(hmd))
assert segment is not None, "expected the shared-table publish path"
print(ring.name)
print(header["segment"])
sys.exit(0)  # abnormal teardown: neither close() nor unlink() ran
"""


@mp_mark
class TestAbnormalTeardown:
    def test_atexit_sweep_reaps_owned_segments(self):
        from multiprocessing import shared_memory

        proc = subprocess.run(
            [sys.executable, "-c", _LEAK_SCRIPT],
            capture_output=True,
            text=True,
            cwd="/root/repo",
            env={"PYTHONPATH": "src:.", "PATH": "/usr/bin:/bin"},
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        names = proc.stdout.split()
        assert len(names) == 2
        for name in names:
            with pytest.raises(FileNotFoundError):
                segment = shared_memory.SharedMemory(name=name)
                segment.close()  # unreachable unless the sweep failed
