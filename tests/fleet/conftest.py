"""Shared fixtures for the fleet test package.

The autouse leak guard asserts that no parent-owned shared-memory
segment outlives the test that created it — the regression it pins is
the fleet facade (or a test fixture) leaking ``/dev/shm`` segments when
teardown is skipped or a supervisor dies before ``close()``.
"""

import pytest

from repro.fleet.shm import active_owned_segments


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test must leave the owned-segment registry empty."""
    before = set(active_owned_segments())
    yield
    leaked = [name for name in active_owned_segments() if name not in before]
    assert not leaked, f"test leaked shared-memory segments: {leaked}"
