"""Fleet-level tests for the low-precision inference modes.

The fleet contract per mode:

* ``"quantized"`` — every monitor (single, sharded, multi-process
  worker) produces verdicts *bitwise identical* to ``TrustedHMD`` in
  float64, because the uint8 kernel rewrites thresholds onto the bin
  grid without moving them;
* ``"float32"`` — all monitor shapes agree with each other bitwise (the
  arena write rounds exactly like the in-process cast), and the fused
  front drifts from the float64 front by at most 1e-6 per feature;
* switching the compile mode on a live HMD makes
  :meth:`PublishedHmd.is_current` go stale so the next drain
  republishes the right kernel (the satellite-2 regression).
"""

import pickle

import numpy as np
import pytest

from repro.fleet import (
    BackpressurePolicy,
    FleetMonitor,
    PublishedHmd,
    ShardedFleetMonitor,
    WorkerShardedFleetMonitor,
)
from repro.fleet.engine import batch_verdict_key
from repro.fleet.report import device_report_key
from repro.ml import RandomForestClassifier
from repro.ml.backend import FlatForest, QuantizedForest
from repro.uncertainty import TrustedHMD
from tests.conftest import make_blobs
from tests.fleet.test_sharding import _arrivals, _drive

pytestmark = pytest.mark.filterwarnings(
    "ignore::DeprecationWarning"  # multiprocessing fork in threaded pytest
)


def make_hmd(mode, *, n_components=None, n_estimators=15, seed=0):
    X, y = make_blobs(n_per_class=120, separation=4.0, seed=70)
    hmd = TrustedHMD(
        RandomForestClassifier(
            n_estimators=n_estimators,
            random_state=seed,
            grower="hist" if mode == "quantized" else "exact",
        ),
        threshold=0.4,
        n_components=n_components,
    ).fit(X, y)
    hmd.compile(mode=mode)
    return X, hmd


class TestFloat32Front:
    @pytest.mark.parametrize("n_components", [None, 4])
    def test_feature_drift_gate(self, n_components):
        """f32 fused-front features drift ≤ 1e-6 from the f64 front."""
        X, hmd = make_hmd("float64", n_components=n_components)
        Z64 = hmd._transform(X)
        hmd.compile(mode="float32")
        Z32 = hmd._transform(X)
        assert Z32.dtype == np.float32
        scale = np.maximum(1.0, np.abs(Z64))
        drift = np.max(np.abs(Z32.astype(np.float64) - Z64) / scale)
        assert drift <= 1e-6, f"float32 front drift {drift:.2e}"

    def test_mode_is_sticky_and_reported(self):
        X, hmd = make_hmd("float32")
        assert hmd.compile_mode == "float32"
        assert np.dtype(hmd._front_dtype_) == np.float32
        hmd.compile()  # no-arg recompile keeps the mode
        assert hmd.compile_mode == "float32"
        hmd.compile(mode="float64")
        assert np.dtype(hmd._front_dtype_) == np.float64

    def test_verdict_agreement(self):
        """f32 verdicts match f64 on well-separated data."""
        X, hmd = make_hmd("float64")
        v64 = hmd.analyze(X)
        hmd.compile(mode="float32")
        v32 = hmd.analyze(X)
        agree = np.mean(v64.predictions == v32.predictions)
        assert agree >= 0.999
        assert np.mean(v64.accepted == v32.accepted) >= 0.999

    def test_quantized_requires_hist(self):
        X, hmd = make_hmd("float64")  # exact grower
        with pytest.raises(ValueError, match="hist"):
            hmd.compile(mode="quantized")
        with pytest.raises(ValueError, match="unknown compile mode"):
            hmd.compile(mode="bfloat16")


class TestPublishedHmdModes:
    @pytest.mark.parametrize("n_components", [None, 4])
    def test_quantized_verdicts_bitwise(self, n_components):
        X, hmd = make_hmd("quantized", n_components=n_components)
        published = PublishedHmd(hmd)
        assert isinstance(published.backend, QuantizedForest)
        assert published.compile_mode == "quantized"
        rng = np.random.default_rng(4)
        probe = X[rng.integers(len(X), size=300)]
        reference = hmd.analyze(probe)
        predictions, entropy, accepted = published.verdict(probe)
        np.testing.assert_array_equal(predictions, reference.predictions)
        np.testing.assert_array_equal(entropy, reference.entropy)
        np.testing.assert_array_equal(accepted, reference.accepted)

    def test_float32_verdicts_bitwise(self):
        X, hmd = make_hmd("float32")
        published = PublishedHmd(hmd)
        assert isinstance(published.backend, FlatForest)
        assert published.backend.feature_dtype == np.float32
        reference = hmd.analyze(X)
        predictions, entropy, _ = published.verdict(X)
        np.testing.assert_array_equal(predictions, reference.predictions)
        np.testing.assert_array_equal(entropy, reference.entropy)

    def test_is_current_tracks_compile_mode(self):
        """Satellite 2: a mode switch alone makes the publication stale."""
        X, hmd = make_hmd("quantized")
        published = PublishedHmd(hmd)
        assert published.is_current()
        hmd.compile(mode="float64")
        assert not published.is_current()
        republished = PublishedHmd(hmd)
        assert republished.is_current()
        assert republished.compile_mode == "float64"
        hmd.compile(mode="quantized")
        assert not republished.is_current()


class TestShardedModes:
    @pytest.mark.parametrize("mode", ["quantized", "float32"])
    def test_sharded_matches_single(self, mode):
        X, hmd = make_hmd(mode)
        arrivals = _arrivals(X, n_devices=12, rounds=40, seed=5)
        policy = BackpressurePolicy(max_pending=len(arrivals) + 1)
        single = _drive(
            FleetMonitor(hmd, batch_size=64, policy=policy), arrivals
        )
        sharded_monitor = ShardedFleetMonitor(
            hmd, n_shards=3, batch_size=64, policy=policy
        )
        sharded = _drive(sharded_monitor, arrivals)
        assert batch_verdict_key(sharded) == batch_verdict_key(single)

    def test_live_mode_switch_republishes(self):
        """Satellite 2 end-to-end: recompile mid-stream, next drain
        serves the new kernel."""
        X, hmd = make_hmd("quantized")
        arrivals = _arrivals(X, n_devices=8, rounds=30, seed=6)
        policy = BackpressurePolicy(max_pending=len(arrivals) + 1)
        monitor = ShardedFleetMonitor(
            hmd, n_shards=2, batch_size=64, policy=policy
        )
        first = _drive(monitor, arrivals)
        assert isinstance(monitor.published.backend, QuantizedForest)

        hmd.compile(mode="float64")
        assert not monitor.published.is_current()
        for device_id, window in arrivals:
            monitor.submit(device_id, window)
        second = monitor.drain()
        assert isinstance(monitor.published.backend, FlatForest)
        assert monitor.published.compile_mode == "float64"
        # Quantization is exact: replaying the same windows through the
        # float64 kernel yields the same verdicts (sequence numbers keep
        # counting across drains, so re-key the second drain back).
        rekeyed = {
            (device, seq - 30): value
            for (device, seq), value in batch_verdict_key(second).items()
        }
        assert rekeyed == batch_verdict_key(first)

    def test_quantized_snapshot_restore(self):
        X, hmd = make_hmd("quantized")
        arrivals = _arrivals(X, n_devices=10, rounds=30, seed=7)
        policy = BackpressurePolicy(max_pending=len(arrivals) + 1)
        probe = ShardedFleetMonitor(
            hmd, n_shards=2, batch_size=64, policy=policy
        )
        for device_id, _ in arrivals:
            probe.register(device_id)
        for device_id, window in arrivals:
            probe.submit(device_id, window)
        probe.drain(max_batches=1)
        restored = ShardedFleetMonitor.restore(
            hmd, pickle.loads(pickle.dumps(probe.snapshot()))
        )
        assert batch_verdict_key(restored.drain()) == batch_verdict_key(
            probe.drain()
        )
        assert device_report_key(restored.report()) == device_report_key(
            probe.report()
        )


class TestWorkerModes:
    @pytest.mark.parametrize("mode", ["quantized", "float32"])
    def test_worker_fleet_matches_single(self, mode):
        X, hmd = make_hmd(mode)
        arrivals = _arrivals(X, n_devices=10, rounds=30, seed=8)
        policy = BackpressurePolicy(max_pending=len(arrivals) + 1)
        single_monitor = FleetMonitor(hmd, batch_size=64, policy=policy)
        single = _drive(single_monitor, arrivals)
        with WorkerShardedFleetMonitor(
            hmd,
            n_shards=2,
            batch_size=64,
            policy=policy,
            mp_context="fork",
        ) as fleet:
            batches = _drive(fleet, arrivals)
            assert batch_verdict_key(batches) == batch_verdict_key(single)
            assert device_report_key(fleet.report()) == device_report_key(
                single_monitor.report()
            )
            ring = fleet.handles[0].ring
            expected = "<f4" if mode == "float32" else "<f8"
            assert ring.feat_dtype == expected
            assert ring.spec()["feat_dtype"] == expected
