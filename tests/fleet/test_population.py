"""Tests for fleet population sampling, trace generation and the
feature-level window sampler."""

import numpy as np
import pytest

from repro.fleet import FleetWindowSampler
from repro.hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN
from repro.sim import FleetDevice, FleetPopulation, FleetTraceGenerator
from repro.sim.trace import ActivityTrace


class TestFleetDevice:
    def test_cohort_validated(self):
        with pytest.raises(ValueError):
            FleetDevice("dev-0", DVFS_KNOWN_BENIGN[0], cohort="confused")


class TestFleetPopulation:
    def _population(self, **kwargs):
        defaults = dict(
            malware_fraction=0.10, zero_day_fraction=0.05, random_state=0
        )
        defaults.update(kwargs)
        return FleetPopulation(
            DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN, **defaults
        )

    def test_cohort_mix(self):
        devices = self._population().sample(64)
        cohorts = [d.cohort for d in devices]
        assert cohorts.count("malware") == 6       # round(0.10 * 64)
        assert cohorts.count("zero_day") == 3      # round(0.05 * 64)
        assert cohorts.count("benign") == 55
        assert len({d.device_id for d in devices}) == 64

    def test_small_fleet_still_gets_every_cohort(self):
        devices = self._population().sample(5)
        cohorts = {d.cohort for d in devices}
        assert cohorts == {"benign", "malware", "zero_day"}

    def test_specs_match_cohorts(self):
        benign_names = {s.name for s in DVFS_KNOWN_BENIGN}
        malware_names = {s.name for s in DVFS_KNOWN_MALWARE}
        unknown_names = {s.name for s in DVFS_UNKNOWN}
        for device in self._population().sample(40):
            if device.cohort == "benign":
                assert device.spec.name in benign_names
            elif device.cohort == "malware":
                assert device.spec.name in malware_names
            else:
                assert device.spec.name in unknown_names

    def test_reproducible_given_seed(self):
        a = self._population(random_state=11).sample(20)
        b = self._population(random_state=11).sample(20)
        assert [(d.device_id, d.spec.name, d.cohort) for d in a] == [
            (d.device_id, d.spec.name, d.cohort) for d in b
        ]

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            self._population(malware_fraction=0.7, zero_day_fraction=0.6)
        with pytest.raises(ValueError):
            FleetPopulation(
                DVFS_KNOWN_BENIGN, (), (), malware_fraction=0.5
            )


class TestFleetTraceGenerator:
    @pytest.fixture()
    def fleet(self):
        return FleetPopulation(
            DVFS_KNOWN_BENIGN,
            DVFS_KNOWN_MALWARE,
            DVFS_UNKNOWN,
            malware_fraction=0.2,
            zero_day_fraction=0.1,
            random_state=3,
        ).sample(8)

    def test_stream_round_robin(self, fleet):
        generator = FleetTraceGenerator(fleet, random_state=0)
        events = list(generator.stream(n_rounds=3, window_steps=40))
        assert len(events) == 24
        # Each round visits every device once, in fleet order.
        first_round = [d.device_id for d, _ in events[:8]]
        assert first_round == [d.device_id for d in fleet]
        for device, trace in events:
            assert isinstance(trace, ActivityTrace)
            assert trace.n_steps == 40
            assert trace.name == device.spec.name

    def test_duty_cycle_thins_stream(self, fleet):
        generator = FleetTraceGenerator(fleet, duty_cycle=0.3, random_state=0)
        events = list(generator.stream(n_rounds=50, window_steps=10))
        assert 0 < len(events) < 50 * len(fleet) * 0.6

    def test_device_windows(self, fleet):
        generator = FleetTraceGenerator(fleet, random_state=0)
        windows = generator.device_windows(fleet[0], n_windows=4, window_steps=25)
        assert len(windows) == 4
        assert all(w.n_steps == 25 for w in windows)

    def test_devices_are_decorrelated(self, fleet):
        generator = FleetTraceGenerator(fleet, random_state=0)
        same_spec = [d for d in fleet if d.spec.name == fleet[0].spec.name]
        trace_a = generator.device_windows(fleet[0], 1, 30)[0]
        if len(same_spec) > 1:
            trace_b = generator.device_windows(same_spec[1], 1, 30)[0]
            assert not np.array_equal(trace_a.cpu_demand, trace_b.cpu_demand)


class TestFleetWindowSampler:
    def test_pools_follow_cohorts(self, dvfs_small):
        devices = FleetPopulation(
            DVFS_KNOWN_BENIGN,
            DVFS_KNOWN_MALWARE,
            DVFS_UNKNOWN,
            malware_fraction=0.25,
            zero_day_fraction=0.25,
            random_state=5,
        ).sample(8)
        sampler = FleetWindowSampler(dvfs_small, devices, random_state=5)
        for device in devices:
            windows = sampler.windows(device.device_id, 5)
            assert windows.shape == (5, dvfs_small.test.X.shape[1])

    def test_rounds_cover_fleet(self, dvfs_small):
        devices = FleetPopulation(
            DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN, random_state=2
        ).sample(6)
        sampler = FleetWindowSampler(dvfs_small, devices, random_state=2)
        events = list(sampler.rounds(4))
        assert len(events) == 24
        assert {d for d, _ in events} == {d.device_id for d in devices}


class TestTinyFleetClipping:
    def _population(self):
        return FleetPopulation(
            DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN,
            malware_fraction=0.05, zero_day_fraction=0.02, random_state=0,
        )

    def test_single_device_is_benign(self):
        (device,) = self._population().sample(1)
        assert device.cohort == "benign"

    def test_two_devices_keep_a_benign(self):
        cohorts = {d.cohort for d in self._population().sample(2)}
        assert "benign" in cohorts

    def test_benign_always_present(self):
        for n in range(1, 8):
            cohorts = [d.cohort for d in self._population().sample(n)]
            assert cohorts.count("benign") >= 1
