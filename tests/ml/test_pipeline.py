"""Tests for the Pipeline composite."""

import numpy as np
import pytest

from repro.ml import (
    PCA,
    LogisticRegression,
    Pipeline,
    RandomForestClassifier,
    SelectKBest,
    StandardScaler,
    clone,
    make_pipeline,
)
from repro.ml.model_selection import GridSearchCV


class TestPipelineBasics:
    def test_fit_predict(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        pipe = Pipeline(
            [("scale", StandardScaler()), ("clf", LogisticRegression())]
        ).fit(X_train, y_train)
        assert np.mean(pipe.predict(X_test) == y_test) > 0.95

    def test_three_stage_chain(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        pipe = Pipeline(
            [
                ("scale", StandardScaler()),
                ("pca", PCA(n_components=3)),
                ("clf", LogisticRegression()),
            ]
        ).fit(X_train, y_train)
        assert np.mean(pipe.predict(X_test) == y_test) > 0.9

    def test_supervised_transformer_in_chain(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        pipe = Pipeline(
            [("select", SelectKBest(k=4)), ("clf", LogisticRegression())]
        ).fit(X_train, y_train)
        assert np.mean(pipe.predict(X_test) == y_test) > 0.9

    def test_predict_proba_delegates(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        pipe = Pipeline(
            [("scale", StandardScaler()), ("clf", LogisticRegression())]
        ).fit(X_train, y_train)
        proba = pipe.predict_proba(X_test)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_decisions_delegates_to_ensemble(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        pipe = Pipeline(
            [
                ("scale", StandardScaler()),
                ("rf", RandomForestClassifier(n_estimators=7, random_state=0)),
            ]
        ).fit(X_train, y_train)
        assert pipe.decisions(X_test).shape == (len(X_test), 7)

    def test_decisions_raises_without_ensemble(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        pipe = Pipeline(
            [("scale", StandardScaler()), ("clf", LogisticRegression())]
        ).fit(X_train, y_train)
        with pytest.raises(AttributeError):
            pipe.decisions(X_test)

    def test_original_steps_not_mutated(self, blobs_split):
        X_train, _, y_train, _ = blobs_split
        scaler = StandardScaler()
        pipe = Pipeline([("scale", scaler), ("clf", LogisticRegression())])
        pipe.fit(X_train, y_train)
        assert not hasattr(scaler, "mean_")  # the clone was fitted, not this

    def test_named_steps_access(self, blobs_split):
        X_train, _, y_train, _ = blobs_split
        pipe = Pipeline(
            [("scale", StandardScaler()), ("clf", LogisticRegression())]
        ).fit(X_train, y_train)
        assert hasattr(pipe.named_steps["scale"], "mean_")

    def test_transform_only_chain(self, blobs):
        X, _ = blobs
        pipe = Pipeline(
            [("scale", StandardScaler()), ("pca", PCA(n_components=2))]
        ).fit(X)
        assert pipe.transform(X).shape == (len(X), 2)


class TestPipelineValidation:
    def test_empty_steps(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            Pipeline([]).fit(X, y)

    def test_duplicate_names(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError, match="unique"):
            Pipeline(
                [("a", StandardScaler()), ("a", LogisticRegression())]
            ).fit(X, y)

    def test_intermediate_must_transform(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError, match="transform"):
            Pipeline(
                [("clf", LogisticRegression()), ("clf2", LogisticRegression())]
            ).fit(X, y)


class TestPipelineComposition:
    def test_clonable(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        pipe = Pipeline([("scale", StandardScaler()), ("clf", LogisticRegression())])
        copy = clone(pipe)
        copy.fit(X_train, y_train)
        assert copy.predict(X_test).shape == (len(X_test),)

    def test_grid_search_over_pipeline(self, blobs):
        X, y = blobs
        pipe = Pipeline([("scale", StandardScaler()), ("clf", LogisticRegression())])
        # GridSearch clones the pipeline per parameter combination.
        search = GridSearchCV(pipe, {"steps": [pipe.steps]}, cv=3)
        search.fit(X, y)
        assert search.best_score_ > 0.9

    def test_make_pipeline_names(self):
        pipe = make_pipeline(StandardScaler(), LogisticRegression())
        names = [name for name, _ in pipe.steps]
        assert names == ["standardscaler_0", "logisticregression_1"]
