"""Tests for ROC / PR curve metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    average_precision_score,
    precision_recall_curve,
    roc_auc_score,
    roc_curve,
)


class TestRocCurve:
    def test_perfect_separation(self):
        y = [0, 0, 1, 1]
        scores = [0.1, 0.2, 0.8, 0.9]
        fpr, tpr, _ = roc_curve(y, scores)
        assert roc_auc_score(y, scores) == pytest.approx(1.0)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_inverted_scores_auc_zero(self):
        y = [0, 0, 1, 1]
        scores = [0.9, 0.8, 0.2, 0.1]
        assert roc_auc_score(y, scores) == pytest.approx(0.0)

    def test_random_scores_auc_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=4000)
        scores = rng.random(4000)
        assert roc_auc_score(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_monotonic_curve(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=200)
        scores = rng.random(200)
        fpr, tpr, _ = roc_curve(y, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_ties_handled(self):
        y = [0, 1, 0, 1]
        scores = [0.5, 0.5, 0.5, 0.5]
        assert roc_auc_score(y, scores) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(ValueError, match="2 classes"):
            roc_curve([1, 1, 1], [0.1, 0.2, 0.3])

    def test_thresholds_start_at_inf(self):
        _, _, thresholds = roc_curve([0, 1], [0.3, 0.7])
        assert thresholds[0] == np.inf


class TestPrecisionRecallCurve:
    def test_perfect_separation(self):
        precision, recall, _ = precision_recall_curve([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9])
        # First entry is full coverage (precision = base rate), last is the
        # (1, 0) endpoint.
        assert precision[0] == pytest.approx(0.5)
        assert precision[-1] == pytest.approx(1.0)
        assert average_precision_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == pytest.approx(1.0)

    def test_endpoint_convention(self):
        precision, recall, _ = precision_recall_curve([0, 1], [0.4, 0.6])
        assert precision[-1] == 1.0
        assert recall[-1] == 0.0

    def test_ap_bounded(self):
        rng = np.random.default_rng(2)
        y = rng.integers(0, 2, size=300)
        s = rng.random(300)
        ap = average_precision_score(y, s)
        assert 0.0 <= ap <= 1.0

    def test_ap_better_for_informative_scores(self):
        rng = np.random.default_rng(3)
        y = rng.integers(0, 2, size=500)
        informative = y + 0.5 * rng.random(500)
        random_scores = rng.random(500)
        assert average_precision_score(y, informative) > average_precision_score(
            y, random_scores
        )
