"""Tests for AdaBoost and ExtraTrees."""

import numpy as np
import pytest

from repro.ml import AdaBoostClassifier, DecisionTreeClassifier, ExtraTreesClassifier
from repro.uncertainty import EnsembleUncertaintyEstimator
from tests.conftest import make_blobs


class TestAdaBoost:
    def test_stumps_combine_beyond_single_stump(self):
        # A single axis-aligned stump cannot solve this diagonal
        # problem well; boosted stumps can.
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(400, 2))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        boosted = AdaBoostClassifier(n_estimators=40, random_state=0).fit(X, y)
        assert boosted.score(X, y) > stump.score(X, y) + 0.05

    def test_blobs_accuracy(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = AdaBoostClassifier(n_estimators=25, random_state=0).fit(
            X_train, y_train
        )
        assert model.score(X_test, y_test) > 0.95

    def test_estimator_weights_positive(self, blobs):
        X, y = blobs
        model = AdaBoostClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert all(w > 0 for w in model.estimator_weights_)
        assert len(model.estimator_weights_) == len(model.estimators_)

    def test_decisions_interface_for_uncertainty(self, blobs):
        X, y = blobs
        model = AdaBoostClassifier(n_estimators=12, random_state=0).fit(X, y)
        estimator = EnsembleUncertaintyEstimator(model)
        entropy = estimator.predictive_entropy(X[:20])
        assert np.all((entropy >= 0) & (entropy <= 1 + 1e-9))

    def test_proba_normalised(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        model = AdaBoostClassifier(n_estimators=10, random_state=0).fit(
            X_train, y_train
        )
        proba = model.predict_proba(X_test)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_custom_base_estimator(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = AdaBoostClassifier(
            DecisionTreeClassifier(max_depth=3),
            n_estimators=8,
            random_state=0,
        ).fit(X_train, y_train)
        # A depth-3 base fits this set perfectly under the weighted
        # (reweighting, not resampling) rounds, so boosting converges
        # to that single member — the canonical SAMME early stop.
        assert len(model.estimators_) >= 1
        assert model.score(X_test, y_test) > 0.9

    def test_weighted_rounds_differ_from_single_base(self, blobs_split):
        # Real-valued reweighting must actually change later rounds:
        # member 2 is trained on upweighted mistakes of member 1.
        rng = np.random.default_rng(5)
        X = rng.uniform(-1, 1, size=(300, 2))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        model = AdaBoostClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert len(model.estimators_) > 1
        first, second = model.estimators_[0], model.estimators_[1]
        same_split = (
            first.tree_.feature[0] == second.tree_.feature[0]
            and first.tree_.threshold[0] == second.tree_.threshold[0]
        )
        assert not same_split

    def test_invalid_params(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            AdaBoostClassifier(n_estimators=0).fit(X, y)
        with pytest.raises(ValueError):
            AdaBoostClassifier(learning_rate=0.0).fit(X, y)

    def test_single_class_rejected(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        with pytest.raises(ValueError):
            AdaBoostClassifier().fit(X, np.zeros(10))


class TestExtraTrees:
    def test_blobs_accuracy(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = ExtraTreesClassifier(n_estimators=20, random_state=0).fit(
            X_train, y_train
        )
        assert model.score(X_test, y_test) > 0.95

    def test_boundary_points_contested(self):
        # Random thresholds still produce substantial member
        # disagreement on saddle points while agreeing in-distribution.
        X, y = make_blobs(n_per_class=150, separation=3.0, seed=42)
        boundary = np.zeros((50, X.shape[1]))
        et = ExtraTreesClassifier(n_estimators=20, random_state=0).fit(X, y)

        def disagreement(votes):
            frac = np.mean(votes == votes[:, :1], axis=1)
            return float(1.0 - frac.mean())

        assert disagreement(et.decisions(boundary)) > 0.15
        assert disagreement(et.decisions(X)) < disagreement(et.decisions(boundary))

    def test_vote_distribution_rows_sum(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        model = ExtraTreesClassifier(n_estimators=10, random_state=0).fit(
            X_train, y_train
        )
        dist = model.vote_distribution(X_test)
        np.testing.assert_allclose(dist.sum(axis=1), 1.0)

    def test_bootstrap_mode(self, blobs):
        X, y = blobs
        model = ExtraTreesClassifier(
            n_estimators=5, bootstrap=True, random_state=0
        ).fit(X, y)
        assert len(model.estimators_) == 5

    def test_max_depth_respected(self, blobs):
        X, y = blobs
        model = ExtraTreesClassifier(
            n_estimators=5, max_depth=3, random_state=0
        ).fit(X, y)
        assert all(t.get_depth() <= 3 for t in model.estimators_)

    def test_deterministic_with_seed(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        a = ExtraTreesClassifier(n_estimators=5, random_state=9).fit(X_train, y_train)
        b = ExtraTreesClassifier(n_estimators=5, random_state=9).fit(X_train, y_train)
        np.testing.assert_array_equal(a.predict(X_test), b.predict(X_test))
