"""Tests for k-means clustering."""

import numpy as np
import pytest

from repro.ml import KMeans


def _three_blobs(seed=0, n=60, spread=0.3):
    rng = np.random.default_rng(seed)
    centers = np.array([[-5.0, 0.0], [0.0, 5.0], [5.0, 0.0]])
    X = np.vstack([rng.normal(c, spread, size=(n, 2)) for c in centers])
    truth = np.repeat([0, 1, 2], n)
    return X, truth, centers


class TestKMeans:
    def test_recovers_well_separated_clusters(self):
        X, truth, centers = _three_blobs()
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        # Each found centroid is near one true center.
        distances = np.sqrt(
            ((km.cluster_centers_[:, None, :] - centers[None, :, :]) ** 2).sum(-1)
        )
        assert distances.min(axis=1).max() < 0.5

    def test_labels_consistent_with_truth(self):
        X, truth, _ = _three_blobs(seed=1)
        labels = KMeans(n_clusters=3, random_state=0).fit_predict(X)
        # Perfect clustering up to permutation: each true cluster maps to
        # exactly one label.
        for t in np.unique(truth):
            assert len(np.unique(labels[truth == t])) == 1

    def test_predict_nearest_centroid(self):
        X, _, centers = _three_blobs(seed=2)
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        probes = centers + 0.01
        labels = km.predict(probes)
        assert len(np.unique(labels)) == 3

    def test_inertia_decreases_with_more_clusters(self):
        X, _, _ = _three_blobs(seed=3)
        inertia_2 = KMeans(n_clusters=2, random_state=0).fit(X).inertia_
        inertia_3 = KMeans(n_clusters=3, random_state=0).fit(X).inertia_
        assert inertia_3 < inertia_2

    def test_transform_shape(self):
        X, _, _ = _three_blobs(seed=4)
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        D = km.transform(X[:10])
        assert D.shape == (10, 3)
        assert np.all(D >= 0)

    def test_single_cluster(self):
        X, _, _ = _three_blobs(seed=5)
        km = KMeans(n_clusters=1, random_state=0).fit(X)
        np.testing.assert_allclose(km.cluster_centers_[0], X.mean(axis=0), atol=1e-6)

    def test_deterministic_with_seed(self):
        X, _, _ = _three_blobs(seed=6)
        a = KMeans(n_clusters=3, random_state=7).fit(X)
        b = KMeans(n_clusters=3, random_state=7).fit(X)
        np.testing.assert_allclose(a.cluster_centers_, b.cluster_centers_)

    def test_validation(self):
        X, _, _ = _three_blobs()
        with pytest.raises(ValueError):
            KMeans(n_clusters=0).fit(X)
        with pytest.raises(ValueError):
            KMeans(n_clusters=10**6).fit(X)
        with pytest.raises(ValueError):
            KMeans(n_clusters=2, n_init=0).fit(X)

    def test_predict_feature_mismatch(self):
        X, _, _ = _three_blobs(seed=8)
        km = KMeans(n_clusters=2, random_state=0).fit(X)
        with pytest.raises(ValueError):
            km.predict(X[:, :1])
