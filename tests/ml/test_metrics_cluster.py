"""Tests for latent-space geometry metrics (Fig. 8 quantification)."""

import numpy as np
import pytest

from repro.ml.metrics import (
    centroid_separation_ratio,
    class_overlap_score,
    neighborhood_purity,
    silhouette_samples,
    silhouette_score,
)
from tests.conftest import make_blobs


class TestSilhouette:
    def test_separated_blobs_high(self):
        X, y = make_blobs(n_per_class=40, separation=8.0, seed=0)
        assert silhouette_score(X, y) > 0.5

    def test_overlapping_blobs_low(self):
        X, y = make_blobs(n_per_class=40, separation=0.3, seed=1)
        assert silhouette_score(X, y) < 0.1

    def test_samples_in_range(self):
        X, y = make_blobs(n_per_class=25, seed=2)
        s = silhouette_samples(X, y)
        assert np.all(s >= -1.0) and np.all(s <= 1.0)

    def test_single_label_raises(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((5, 2)), np.zeros(5))


class TestNeighborhoodPurity:
    def test_separated_near_one(self):
        X, y = make_blobs(n_per_class=50, separation=8.0, seed=3)
        assert neighborhood_purity(X, y, n_neighbors=5) > 0.97

    def test_overlap_near_half(self):
        X, y = make_blobs(n_per_class=200, separation=0.05, seed=4)
        purity = neighborhood_purity(X, y, n_neighbors=10)
        assert purity == pytest.approx(0.5, abs=0.1)

    def test_overlap_score_is_complement(self):
        X, y = make_blobs(n_per_class=30, seed=5)
        assert class_overlap_score(X, y) == pytest.approx(
            1.0 - neighborhood_purity(X, y)
        )

    def test_invalid_neighbors(self):
        X, y = make_blobs(n_per_class=5, seed=6)
        with pytest.raises(ValueError):
            neighborhood_purity(X, y, n_neighbors=0)
        with pytest.raises(ValueError):
            neighborhood_purity(X, y, n_neighbors=100)


class TestCentroidSeparation:
    def test_separated_much_greater_than_one(self):
        X, y = make_blobs(n_per_class=60, separation=10.0, seed=7)
        assert centroid_separation_ratio(X, y) > 2.0

    def test_overlap_below_one(self):
        X, y = make_blobs(n_per_class=60, separation=0.1, seed=8)
        assert centroid_separation_ratio(X, y) < 1.0

    def test_requires_two_classes(self):
        with pytest.raises(ValueError):
            centroid_separation_ratio(np.zeros((4, 2)), np.zeros(4))
