"""Tests for classification metrics against hand-computed values."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_score,
    balanced_accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    fbeta_score,
    matthews_corrcoef,
    precision_recall_fscore_support,
    precision_score,
    recall_score,
)

Y_TRUE = np.array([0, 0, 0, 0, 1, 1, 1, 1, 1, 1])
Y_PRED = np.array([0, 0, 1, 1, 1, 1, 1, 1, 0, 1])
# tp=5, fp=2, fn=1, tn=2 for positive class 1.


class TestAccuracy:
    def test_hand_computed(self):
        assert accuracy_score(Y_TRUE, Y_PRED) == pytest.approx(0.7)

    def test_perfect(self):
        assert accuracy_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_all_wrong(self):
        assert accuracy_score([1, 1], [0, 0]) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestConfusionMatrix:
    def test_hand_computed(self):
        cm = confusion_matrix(Y_TRUE, Y_PRED)
        np.testing.assert_array_equal(cm, [[2, 2], [1, 5]])

    def test_explicit_labels_order(self):
        cm = confusion_matrix([0, 1], [1, 0], labels=[1, 0])
        np.testing.assert_array_equal(cm, [[0, 1], [1, 0]])

    def test_degenerate_prediction_stays_square(self):
        cm = confusion_matrix([0, 1, 1], [0, 0, 0])
        assert cm.shape == (2, 2)
        assert cm[1, 0] == 2

    def test_rows_sum_to_class_counts(self):
        cm = confusion_matrix(Y_TRUE, Y_PRED)
        np.testing.assert_array_equal(cm.sum(axis=1), [4, 6])


class TestPrecisionRecallF1:
    def test_precision_hand_computed(self):
        assert precision_score(Y_TRUE, Y_PRED) == pytest.approx(5 / 7)

    def test_recall_hand_computed(self):
        assert recall_score(Y_TRUE, Y_PRED) == pytest.approx(5 / 6)

    def test_f1_is_harmonic_mean(self):
        p, r = 5 / 7, 5 / 6
        assert f1_score(Y_TRUE, Y_PRED) == pytest.approx(2 * p * r / (p + r))

    def test_zero_division_default(self):
        # No positive predictions at all.
        assert precision_score([0, 1], [0, 0]) == 0.0

    def test_macro_average(self):
        p_macro = precision_score(Y_TRUE, Y_PRED, average="macro")
        p0 = 2 / 3  # class 0: tp=2 (pred 0 & true 0), fp=1
        p1 = 5 / 7
        assert p_macro == pytest.approx((p0 + p1) / 2)

    def test_micro_average_equals_accuracy_binary(self):
        f_micro = f1_score(Y_TRUE, Y_PRED, average="micro")
        assert f_micro == pytest.approx(accuracy_score(Y_TRUE, Y_PRED))

    def test_weighted_average(self):
        _, r_w, _, _ = precision_recall_fscore_support(
            Y_TRUE, Y_PRED, average="weighted"
        )
        r0, r1 = 2 / 4, 5 / 6
        assert r_w == pytest.approx(0.4 * r0 + 0.6 * r1)

    def test_per_class_arrays(self):
        p, r, f, s = precision_recall_fscore_support(Y_TRUE, Y_PRED)
        assert len(p) == len(r) == len(f) == len(s) == 2
        np.testing.assert_array_equal(s, [4, 6])

    def test_binary_requires_two_labels(self):
        with pytest.raises(ValueError):
            precision_score([0, 1, 2], [0, 1, 2], average="binary")

    def test_unknown_average_raises(self):
        with pytest.raises(ValueError):
            f1_score(Y_TRUE, Y_PRED, average="bogus")


class TestFbeta:
    def test_beta_one_equals_f1(self):
        assert fbeta_score(Y_TRUE, Y_PRED, beta=1.0) == pytest.approx(
            f1_score(Y_TRUE, Y_PRED)
        )

    def test_large_beta_approaches_recall(self):
        f = fbeta_score(Y_TRUE, Y_PRED, beta=100.0)
        assert f == pytest.approx(recall_score(Y_TRUE, Y_PRED), abs=1e-3)

    def test_small_beta_approaches_precision(self):
        f = fbeta_score(Y_TRUE, Y_PRED, beta=0.01)
        assert f == pytest.approx(precision_score(Y_TRUE, Y_PRED), abs=1e-3)


class TestBalancedAccuracy:
    def test_hand_computed(self):
        expected = (2 / 4 + 5 / 6) / 2
        assert balanced_accuracy_score(Y_TRUE, Y_PRED) == pytest.approx(expected)

    def test_imbalance_insensitive(self):
        # Majority-class prediction: balanced accuracy = 0.5.
        y_true = [0] * 95 + [1] * 5
        y_pred = [0] * 100
        assert balanced_accuracy_score(y_true, y_pred) == pytest.approx(0.5)


class TestMatthews:
    def test_perfect_is_one(self):
        assert matthews_corrcoef([0, 1, 0, 1], [0, 1, 0, 1]) == pytest.approx(1.0)

    def test_inverted_is_minus_one(self):
        assert matthews_corrcoef([0, 1, 0, 1], [1, 0, 1, 0]) == pytest.approx(-1.0)

    def test_degenerate_is_zero(self):
        assert matthews_corrcoef([0, 1], [0, 0]) == 0.0


class TestClassificationReport:
    def test_report_fields(self):
        report = classification_report(Y_TRUE, Y_PRED)
        assert report.labels == (0, 1)
        assert report.accuracy == pytest.approx(0.7)
        assert report.support == (4, 6)

    def test_as_text_renders(self):
        text = classification_report(Y_TRUE, Y_PRED).as_text()
        assert "precision" in text
        assert "accuracy" in text
