"""Property-based tests (hypothesis) for ML substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml import (
    DecisionTreeClassifier,
    GaussianNB,
    MinMaxScaler,
    StandardScaler,
)
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
    squared_euclidean_distances,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def labelled_pairs(draw, min_size=2, max_size=60):
    """Matched (y_true, y_pred) binary label arrays."""
    n = draw(st.integers(min_size, max_size))
    y_true = draw(arrays(np.int64, n, elements=st.integers(0, 1)))
    y_pred = draw(arrays(np.int64, n, elements=st.integers(0, 1)))
    return y_true, y_pred


@st.composite
def feature_matrices(draw, min_rows=4, max_rows=40, min_cols=1, max_cols=6):
    """Finite 2-d float arrays."""
    rows = draw(st.integers(min_rows, max_rows))
    cols = draw(st.integers(min_cols, max_cols))
    return draw(arrays(np.float64, (rows, cols), elements=finite_floats))


class TestMetricProperties:
    @given(labelled_pairs())
    @settings(max_examples=60, deadline=None)
    def test_accuracy_bounded(self, pair):
        y_true, y_pred = pair
        assert 0.0 <= accuracy_score(y_true, y_pred) <= 1.0

    @given(labelled_pairs())
    @settings(max_examples=60, deadline=None)
    def test_confusion_matrix_total(self, pair):
        y_true, y_pred = pair
        cm = confusion_matrix(y_true, y_pred)
        assert cm.sum() == len(y_true)

    @given(labelled_pairs())
    @settings(max_examples=60, deadline=None)
    def test_f1_between_precision_and_recall(self, pair):
        y_true, y_pred = pair
        p = precision_score(y_true, y_pred)
        r = recall_score(y_true, y_pred)
        f = f1_score(y_true, y_pred)
        lo, hi = min(p, r), max(p, r)
        assert lo - 1e-9 <= f <= hi + 1e-9

    @given(labelled_pairs())
    @settings(max_examples=60, deadline=None)
    def test_perfect_prediction_all_ones(self, pair):
        y_true, _ = pair
        assert accuracy_score(y_true, y_true) == 1.0

    @given(feature_matrices())
    @settings(max_examples=40, deadline=None)
    def test_distances_symmetric_nonnegative(self, X):
        d2 = squared_euclidean_distances(X)
        assert np.all(d2 >= 0)
        # Tolerances scale with the squared data magnitude (catastrophic
        # cancellation is inherent to the expansion formula).
        atol = 1e-9 * max(1.0, float(np.abs(X).max()) ** 2)
        np.testing.assert_allclose(d2, d2.T, rtol=1e-6, atol=atol)
        assert np.allclose(np.diag(d2), 0.0, atol=atol)


class TestScalerProperties:
    @given(feature_matrices(min_rows=3))
    @settings(max_examples=40, deadline=None)
    def test_standard_scaler_roundtrip(self, X):
        scaler = StandardScaler().fit(X)
        X_rec = scaler.inverse_transform(scaler.transform(X))
        np.testing.assert_allclose(X_rec, X, rtol=1e-6, atol=1e-6)

    @given(feature_matrices(min_rows=3))
    @settings(max_examples=40, deadline=None)
    def test_minmax_output_in_range(self, X):
        Z = MinMaxScaler().fit_transform(X)
        assert np.all(Z >= -1e-9)
        assert np.all(Z <= 1.0 + 1e-9)

    @given(feature_matrices(min_rows=3))
    @settings(max_examples=40, deadline=None)
    def test_standard_scaler_output_is_standardised(self, X):
        # Scaling twice must keep the defining properties: zero mean and
        # unit variance on every non-constant column.  (Elementwise
        # idempotence does not survive float cancellation on
        # near-constant columns, so we assert the statistics instead.)
        Z = StandardScaler().fit_transform(X)
        Z2 = StandardScaler().fit_transform(Z)
        np.testing.assert_allclose(Z2.mean(axis=0), 0.0, atol=1e-7)
        nonconstant = Z2.std(axis=0) > 0
        np.testing.assert_allclose(Z2.std(axis=0)[nonconstant], 1.0, atol=1e-7)


@st.composite
def classification_data(draw):
    """Feature matrix with binary labels containing both classes."""
    n = draw(st.integers(8, 40))
    cols = draw(st.integers(1, 4))
    X = draw(arrays(np.float64, (n, cols), elements=finite_floats))
    y = np.zeros(n, dtype=np.int64)
    n_pos = draw(st.integers(1, n - 1))
    y[:n_pos] = 1
    return X, y


class TestModelProperties:
    @given(classification_data())
    @settings(max_examples=30, deadline=None)
    def test_tree_training_accuracy_with_distinct_rows(self, data):
        X, y = data
        tree = DecisionTreeClassifier().fit(X, y)
        preds = tree.predict(X)
        # Identical feature rows may carry conflicting labels; otherwise
        # a fully-grown tree must fit the training data exactly.
        _, inverse = np.unique(X, axis=0, return_inverse=True)
        consistent = True
        for group in np.unique(inverse):
            if len(np.unique(y[inverse == group])) > 1:
                consistent = False
                break
        if consistent:
            np.testing.assert_array_equal(preds, y)
        assert set(np.unique(preds)) <= {0, 1}

    @given(classification_data())
    @settings(max_examples=30, deadline=None)
    def test_tree_proba_valid(self, data):
        X, y = data
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(proba >= 0)

    @given(classification_data())
    @settings(max_examples=30, deadline=None)
    def test_nb_predictions_are_known_classes(self, data):
        X, y = data
        nb = GaussianNB().fit(X, y)
        assert set(np.unique(nb.predict(X))) <= set(nb.classes_)
