"""Tests for the shared input-validation helpers."""

import numpy as np
import pytest

from repro.ml.exceptions import DataDimensionError, NotFittedError
from repro.ml.validation import (
    check_array,
    check_consistent_length,
    check_is_fitted,
    check_random_state,
    check_X_y,
    column_or_1d,
    unique_labels,
)


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = check_random_state(42).random(5)
        b = check_random_state(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert check_random_state(gen) is gen

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            check_random_state("seed")


class TestCheckArray:
    def test_coerces_to_float64(self):
        arr = check_array([[1, 2], [3, 4]])
        assert arr.dtype == np.float64

    def test_1d_raises_with_hint(self):
        with pytest.raises(DataDimensionError, match="reshape"):
            check_array([1.0, 2.0])

    def test_3d_raises(self):
        with pytest.raises(DataDimensionError):
            check_array(np.zeros((2, 2, 2)))

    def test_nan_raises(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array([[1.0, np.nan]])

    def test_inf_raises(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_array([[np.inf, 1.0]])

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            check_array(np.zeros((0, 3)))

    def test_empty_allowed_when_requested(self):
        arr = check_array(np.zeros((0, 3)), allow_empty=True)
        assert arr.shape == (0, 3)


class TestColumnOr1d:
    def test_accepts_1d(self):
        np.testing.assert_array_equal(column_or_1d([1, 2, 3]), [1, 2, 3])

    def test_ravels_column_vector(self):
        np.testing.assert_array_equal(column_or_1d([[1], [2]]), [1, 2])

    def test_rejects_matrix(self):
        with pytest.raises(DataDimensionError):
            column_or_1d([[1, 2], [3, 4]])


class TestCheckConsistentLength:
    def test_consistent_ok(self):
        check_consistent_length([1, 2], [3, 4], None)

    def test_inconsistent_raises(self):
        with pytest.raises(ValueError, match="Inconsistent"):
            check_consistent_length([1, 2], [3])


class TestCheckXy:
    def test_returns_validated_pair(self):
        X, y = check_X_y([[1.0, 2.0]], [1])
        assert X.shape == (1, 2)
        assert y.shape == (1,)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            check_X_y([[1.0], [2.0]], [1])


class TestCheckIsFitted:
    def test_unfitted_raises(self):
        class M:
            pass

        with pytest.raises(NotFittedError):
            check_is_fitted(M())

    def test_trailing_underscore_counts_as_fitted(self):
        class M:
            pass

        m = M()
        m.coef_ = np.array([1.0])
        check_is_fitted(m)

    def test_explicit_attributes(self):
        class M:
            pass

        m = M()
        m.a_ = 1
        check_is_fitted(m, "a_")
        with pytest.raises(NotFittedError):
            check_is_fitted(m, ["a_", "b_"])


class TestUniqueLabels:
    def test_sorted_unique(self):
        np.testing.assert_array_equal(unique_labels(np.array([2, 0, 2, 1])), [0, 1, 2])
