"""Tests for GaussianNB and KNeighborsClassifier."""

import numpy as np
import pytest

from repro.ml import GaussianNB, KNeighborsClassifier
from tests.conftest import make_blobs


class TestGaussianNB:
    def test_closed_form_means(self):
        X = np.array([[0.0], [2.0], [10.0], [12.0]])
        y = np.array([0, 0, 1, 1])
        nb = GaussianNB().fit(X, y)
        np.testing.assert_allclose(nb.theta_[:, 0], [1.0, 11.0])

    def test_priors_from_frequencies(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        y = np.array([0] * 7 + [1] * 3)
        nb = GaussianNB().fit(X, y)
        np.testing.assert_allclose(nb.class_prior_, [0.7, 0.3])

    def test_blobs_accuracy(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        nb = GaussianNB().fit(X_train, y_train)
        assert nb.score(X_test, y_test) > 0.97

    def test_proba_normalised(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        nb = GaussianNB().fit(X_train, y_train)
        proba = nb.predict_proba(X_test)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_log_proba_consistent(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        nb = GaussianNB().fit(X_train, y_train)
        np.testing.assert_allclose(
            np.exp(nb.predict_log_proba(X_test)), nb.predict_proba(X_test)
        )

    def test_constant_feature_no_crash(self):
        X = np.column_stack([np.ones(20), np.arange(20.0)])
        y = np.array([0] * 10 + [1] * 10)
        nb = GaussianNB().fit(X, y)
        assert np.all(np.isfinite(nb.predict_proba(X)))

    def test_three_classes(self):
        rng = np.random.default_rng(1)
        X = np.vstack([rng.normal(c, 0.5, size=(40, 2)) for c in (-4, 0, 4)])
        y = np.repeat([0, 1, 2], 40)
        nb = GaussianNB().fit(X, y)
        assert nb.score(X, y) > 0.95


class TestKNN:
    def test_one_neighbor_memorises(self, blobs):
        X, y = blobs
        knn = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        np.testing.assert_array_equal(knn.predict(X), y)

    def test_blobs_accuracy(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        knn = KNeighborsClassifier(n_neighbors=5).fit(X_train, y_train)
        assert knn.score(X_test, y_test) > 0.95

    def test_distance_weighting(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        knn = KNeighborsClassifier(n_neighbors=7, weights="distance").fit(
            X_train, y_train
        )
        assert knn.score(X_test, y_test) > 0.95

    def test_proba_rows_sum(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        knn = KNeighborsClassifier(n_neighbors=5).fit(X_train, y_train)
        np.testing.assert_allclose(knn.predict_proba(X_test).sum(axis=1), 1.0)

    def test_kneighbors_returns_sorted_distances(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        knn = KNeighborsClassifier(n_neighbors=4).fit(X_train, y_train)
        distances, indices = knn.kneighbors(X_test[:3])
        assert distances.shape == (3, 4)
        assert np.all(np.diff(distances, axis=1) >= 0)
        assert indices.max() < len(X_train)

    def test_invalid_params(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0).fit(X, y)
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=10**6).fit(X, y)
        with pytest.raises(ValueError):
            KNeighborsClassifier(weights="kernel").fit(X, y)
