"""Equivalence suite for the flattened ensemble inference backend.

The backend's contract is *bitwise identity*: for any compilable
ensemble, ``decisions_fast`` must reproduce the legacy per-member
Python loop (``decisions``) exactly — votes, and therefore vote
distributions, entropies and downstream verdicts.  These tests sweep
randomized ensembles across the axes that stress the flattening
(ensemble size, tree depth, feature subsetting, class dtypes, stump
trees) and pin the cache-invalidation-on-refit behaviour.
"""

import numpy as np
import pytest

from repro.ml import (
    AdaBoostClassifier,
    BaggingClassifier,
    DecisionTreeClassifier,
    ExtraTreesClassifier,
    GaussianNB,
    LogisticRegression,
    RandomForestClassifier,
    VotingClassifier,
    compile_flat_forest,
)
from repro.ml.backend import CompositeBackend, FlatForest
from repro.uncertainty.entropy import vote_entropy
from tests.conftest import make_blobs


def assert_fast_path_identical(ensemble, X):
    """Votes and entropies through the backend match the legacy loop."""
    legacy = ensemble.decisions(X)
    fast = ensemble.decisions_fast(X)
    assert fast.dtype == legacy.dtype
    assert fast.shape == legacy.shape
    np.testing.assert_array_equal(fast, legacy)
    h_legacy = vote_entropy(legacy, ensemble.classes_)
    h_fast = vote_entropy(fast, ensemble.classes_)
    np.testing.assert_array_equal(h_fast, h_legacy)  # bitwise, no tolerance


def multiclass_blobs(n_classes=3, n_per_class=80, n_features=7, seed=3):
    rng = np.random.default_rng(seed)
    parts, labels = [], []
    for k in range(n_classes):
        centre = rng.normal(scale=2.0, size=n_features)
        parts.append(centre + rng.normal(size=(n_per_class, n_features)))
        labels.append(np.full(n_per_class, k))
    X = np.vstack(parts)
    y = np.concatenate(labels)
    order = rng.permutation(len(y))
    return X[order], y[order]


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("n_estimators", [1, 7, 40])
    @pytest.mark.parametrize("max_depth", [None, 1, 4])
    def test_random_forest(self, n_estimators, max_depth):
        X, y = make_blobs(n_per_class=90, seed=11)
        forest = RandomForestClassifier(
            n_estimators=n_estimators, max_depth=max_depth, random_state=5
        ).fit(X, y)
        assert_fast_path_identical(forest, X + 0.3)

    @pytest.mark.parametrize("max_features", [1.0, 0.5])
    @pytest.mark.parametrize("max_samples", [1.0, 0.6])
    def test_bagging_feature_subsets(self, max_features, max_samples):
        # Bagging's per-member feature subsets exercise the global
        # feature remapping of the flattened node tensor.
        X, y = make_blobs(n_per_class=90, n_features=9, seed=12)
        bag = BaggingClassifier(
            n_estimators=25,
            max_features=max_features,
            max_samples=max_samples,
            random_state=6,
        ).fit(X, y)
        assert_fast_path_identical(bag, X - 0.1)

    def test_overlapping_classes_disagreeing_members(self):
        # Heavy class overlap makes members disagree, stressing vote
        # columns rather than unanimous rows.
        X, y = make_blobs(n_per_class=100, separation=0.4, seed=13)
        forest = RandomForestClassifier(n_estimators=31, random_state=7).fit(X, y)
        assert_fast_path_identical(forest, X)

    def test_multiclass_votes(self):
        X, y = multiclass_blobs()
        forest = RandomForestClassifier(n_estimators=15, random_state=8).fit(X, y)
        assert_fast_path_identical(forest, X)

    def test_string_class_labels(self):
        X, y_int = make_blobs(n_per_class=60, seed=14)
        y = np.array(["benign", "malware"])[y_int]
        forest = RandomForestClassifier(n_estimators=9, random_state=9).fit(X, y)
        votes = forest.decisions_fast(X)
        assert votes.dtype == forest.classes_.dtype
        assert_fast_path_identical(forest, X)

    def test_float_class_labels(self):
        X, y_int = make_blobs(n_per_class=60, seed=15)
        y = np.array([-1.5, 2.25])[y_int]
        bag = BaggingClassifier(n_estimators=10, random_state=10).fit(X, y)
        assert_fast_path_identical(bag, X)

    def test_stump_and_single_node_trees(self):
        X, y = make_blobs(n_per_class=60, seed=16)
        stumps = BaggingClassifier(
            DecisionTreeClassifier(max_depth=1), n_estimators=12, random_state=11
        ).fit(X, y)
        assert_fast_path_identical(stumps, X)
        # max_depth=0 trees are single leaf nodes: traversal depth 0.
        leaves = BaggingClassifier(
            DecisionTreeClassifier(max_depth=0), n_estimators=5, random_state=12
        ).fit(X, y)
        assert_fast_path_identical(leaves, X)

    def test_extra_trees_and_adaboost(self):
        X, y = make_blobs(n_per_class=80, seed=17)
        extra = ExtraTreesClassifier(n_estimators=19, random_state=13).fit(X, y)
        assert_fast_path_identical(extra, X)
        boost = AdaBoostClassifier(n_estimators=12, random_state=14).fit(X, y)
        assert_fast_path_identical(boost, X)

    def test_large_batch_chunking(self):
        # Batches larger than the traversal chunk must stitch cleanly.
        X, y = make_blobs(n_per_class=90, seed=18)
        forest = RandomForestClassifier(n_estimators=110, random_state=15).fit(X, y)
        X_big = np.vstack([X] * 40)  # 7200 rows x 110 members
        assert_fast_path_identical(forest, X_big)

    def test_single_row_batches(self):
        X, y = make_blobs(n_per_class=60, seed=19)
        forest = RandomForestClassifier(n_estimators=21, random_state=16).fit(X, y)
        for row in X[:5]:
            assert_fast_path_identical(forest, row.reshape(1, -1))


class TestHeterogeneousFallback:
    def test_voting_mixed_members_composite(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        voting = VotingClassifier(
            [
                ("tree", DecisionTreeClassifier(max_depth=4, random_state=0)),
                ("nb", GaussianNB()),
                ("lr", LogisticRegression(max_iter=200)),
            ]
        ).fit(X_train, y_train)
        backend = voting.compile()
        assert isinstance(backend, CompositeBackend)
        assert list(backend.tree_columns) == [0]
        assert_fast_path_identical(voting, X_test)

    def test_voting_all_trees_compiles_flat(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        voting = VotingClassifier(
            [
                ("shallow", DecisionTreeClassifier(max_depth=2, random_state=0)),
                ("deep", DecisionTreeClassifier(random_state=1)),
            ]
        ).fit(X_train, y_train)
        assert isinstance(voting.compile(), FlatForest)
        assert_fast_path_identical(voting, X_test)

    def test_voting_no_trees_falls_back(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        voting = VotingClassifier(
            [("nb", GaussianNB()), ("lr", LogisticRegression(max_iter=200))]
        ).fit(X_train, y_train)
        assert voting.compile() is None
        assert_fast_path_identical(voting, X_test)

    def test_bagging_non_tree_base_falls_back(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        bag = BaggingClassifier(
            LogisticRegression(max_iter=200), n_estimators=6, random_state=3
        ).fit(X_train, y_train)
        assert bag.compile() is None
        assert_fast_path_identical(bag, X_test)


class TestCompileCache:
    def test_compile_is_cached(self, blobs_split):
        X_train, _, y_train, _ = blobs_split
        forest = RandomForestClassifier(n_estimators=8, random_state=0).fit(
            X_train, y_train
        )
        assert forest.compile() is forest.compile()

    def test_refit_invalidates_backend(self):
        X1, y1 = make_blobs(n_per_class=70, seed=20)
        X2, y2 = make_blobs(n_per_class=70, n_features=6, separation=1.0, seed=21)
        forest = RandomForestClassifier(n_estimators=12, random_state=1).fit(X1, y1)
        first = forest.compile()
        forest.fit(X2, y2)
        second = forest.compile()
        assert first is not second
        # Votes after the refit must match a never-compiled clone.
        reference = RandomForestClassifier(n_estimators=12, random_state=1).fit(
            X2, y2
        )
        np.testing.assert_array_equal(
            forest.decisions_fast(X2), reference.decisions(X2)
        )

    def test_flat_forest_exposes_structure(self, blobs_split):
        X_train, _, y_train, _ = blobs_split
        forest = RandomForestClassifier(n_estimators=5, random_state=2).fit(
            X_train, y_train
        )
        flat = forest.compile()
        total_nodes = sum(t.tree_.node_count for t in forest.estimators_)
        assert flat.n_nodes == total_nodes
        assert flat.n_members == 5
        assert flat.max_depth == max(t.tree_.max_depth() for t in forest.estimators_)

    def test_compile_flat_forest_direct(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        forest = RandomForestClassifier(n_estimators=6, random_state=4).fit(
            X_train, y_train
        )
        flat = compile_flat_forest(
            forest.estimators_, forest.classes_, forest.n_features_in_
        )
        np.testing.assert_array_equal(
            flat.decisions(X_test), forest.decisions(X_test)
        )


class TestPipelinePassthrough:
    def test_pipeline_decisions_fast_routes_through_backend(self, blobs_split):
        from repro.ml import StandardScaler
        from repro.ml.pipeline import Pipeline

        X_train, X_test, y_train, _ = blobs_split
        pipe = Pipeline(
            [
                ("scale", StandardScaler()),
                ("forest", RandomForestClassifier(n_estimators=7, random_state=0)),
            ]
        ).fit(X_train, y_train)
        np.testing.assert_array_equal(
            pipe.decisions_fast(X_test), pipe.decisions(X_test)
        )

    def test_pipeline_decisions_fast_falls_back(self, blobs_split):
        from repro.ml import StandardScaler
        from repro.ml.base import BaseEstimator
        from repro.ml.pipeline import Pipeline

        class LoopOnlyEnsemble(BaseEstimator):
            """Final step with decisions() but no compiled path."""

            def fit(self, X, y):
                self.inner_ = RandomForestClassifier(
                    n_estimators=5, random_state=1
                ).fit(X, y)
                self.classes_ = self.inner_.classes_
                return self

            def decisions(self, X):
                return self.inner_.decisions(X)

        X_train, X_test, y_train, _ = blobs_split
        pipe = Pipeline(
            [("scale", StandardScaler()), ("ens", LoopOnlyEnsemble())]
        ).fit(X_train, y_train)
        assert not hasattr(pipe.steps_[-1][1], "decisions_fast")
        np.testing.assert_array_equal(
            pipe.decisions_fast(X_test), pipe.decisions(X_test)
        )


class TestSingleTreeDelegation:
    def test_apply_matches_tree_structure(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        tree = DecisionTreeClassifier(random_state=0).fit(X_train, y_train)
        np.testing.assert_array_equal(tree.apply(X_test), tree.tree_.apply(X_test))

    def test_predict_proba_matches_leaf_counts(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        tree = DecisionTreeClassifier(random_state=0).fit(X_train, y_train)
        leaves = tree.tree_.apply(X_test)
        counts = tree.tree_.value[leaves]
        expected = counts / counts.sum(axis=1, keepdims=True)
        np.testing.assert_array_equal(tree.predict_proba(X_test), expected)

    def test_refit_invalidates_single_tree_backend(self):
        X1, y1 = make_blobs(n_per_class=50, seed=22)
        X2, y2 = make_blobs(n_per_class=50, separation=1.2, seed=23)
        tree = DecisionTreeClassifier(random_state=3).fit(X1, y1)
        tree.apply(X1)  # compiles against the first tree
        tree.fit(X2, y2)
        np.testing.assert_array_equal(tree.apply(X2), tree.tree_.apply(X2))

    def test_export_text_renders_flat_arrays(self, blobs_split):
        X_train, _, y_train, _ = blobs_split
        tree = DecisionTreeClassifier(max_depth=2, random_state=0).fit(
            X_train, y_train
        )
        text = tree.export_text()
        assert "<=" in text and ">" in text
        assert "class:" in text
        # One rendered line per reachable node within the depth cap.
        assert len(text.splitlines()) >= 3
        named = tree.export_text(feature_names=[f"s{i}" for i in range(6)])
        assert "s" in named.split("<=")[0]

    def test_export_text_stump(self):
        X, y = make_blobs(n_per_class=30, seed=24)
        stump = DecisionTreeClassifier(max_depth=0, random_state=0).fit(X, y)
        assert stump.export_text().startswith("|--- class:")
