"""Tests for the estimator base classes (get_params/set_params/clone)."""

import numpy as np
import pytest

from repro.ml import (
    BaggingClassifier,
    DecisionTreeClassifier,
    LogisticRegression,
    NotFittedError,
    RandomForestClassifier,
    clone,
)
from repro.ml.base import BaseEstimator


class _Dummy(BaseEstimator):
    def __init__(self, alpha=1.0, beta="x", nested=None):
        self.alpha = alpha
        self.beta = beta
        self.nested = nested


class TestGetParams:
    def test_returns_constructor_params(self):
        d = _Dummy(alpha=2.5, beta="y")
        params = d.get_params()
        assert params["alpha"] == 2.5
        assert params["beta"] == "y"

    def test_deep_includes_nested_estimator_params(self):
        d = _Dummy(nested=_Dummy(alpha=9.0))
        params = d.get_params(deep=True)
        assert params["nested__alpha"] == 9.0

    def test_shallow_excludes_nested_params(self):
        d = _Dummy(nested=_Dummy(alpha=9.0))
        params = d.get_params(deep=False)
        assert "nested__alpha" not in params

    def test_real_estimator_params(self):
        tree = DecisionTreeClassifier(max_depth=3, criterion="entropy")
        params = tree.get_params()
        assert params["max_depth"] == 3
        assert params["criterion"] == "entropy"


class TestSetParams:
    def test_sets_simple_param(self):
        d = _Dummy()
        d.set_params(alpha=7.0)
        assert d.alpha == 7.0

    def test_sets_nested_param(self):
        d = _Dummy(nested=_Dummy())
        d.set_params(nested__alpha=3.0)
        assert d.nested.alpha == 3.0

    def test_unknown_param_raises(self):
        with pytest.raises(ValueError, match="Invalid parameter"):
            _Dummy().set_params(gamma=1)

    def test_nested_on_non_estimator_raises(self):
        d = _Dummy(nested=42)
        with pytest.raises(ValueError, match="not an estimator"):
            d.set_params(nested__alpha=1)

    def test_empty_call_is_noop(self):
        d = _Dummy(alpha=5.0)
        assert d.set_params() is d
        assert d.alpha == 5.0


class TestClone:
    def test_clone_copies_params(self):
        tree = DecisionTreeClassifier(max_depth=4, min_samples_leaf=3)
        copy = clone(tree)
        assert copy.max_depth == 4
        assert copy.min_samples_leaf == 3

    def test_clone_is_unfitted(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        tree = DecisionTreeClassifier(max_depth=3).fit(X_train, y_train)
        copy = clone(tree)
        with pytest.raises(NotFittedError):
            copy.predict(X_test)

    def test_clone_deep_copies_mutable_params(self):
        proto = LogisticRegression()
        bag = BaggingClassifier(proto, n_estimators=3)
        copy = clone(bag)
        assert copy.estimator is not proto
        assert isinstance(copy.estimator, LogisticRegression)

    def test_clone_rejects_non_estimator(self):
        with pytest.raises(TypeError):
            clone(42)


class TestRepr:
    def test_repr_contains_params(self):
        tree = DecisionTreeClassifier(max_depth=5)
        assert "max_depth=5" in repr(tree)


class TestClassifierMixin:
    def test_score_is_accuracy(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = LogisticRegression().fit(X_train, y_train)
        manual = np.mean(model.predict(X_test) == y_test)
        assert model.score(X_test, y_test) == pytest.approx(manual)

    def test_predict_wrong_feature_count_raises(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        model = RandomForestClassifier(n_estimators=3, random_state=0).fit(
            X_train, y_train
        )
        with pytest.raises(ValueError, match="features"):
            model.predict(X_test[:, :2])
