"""Tests for PCA and t-SNE."""

import numpy as np
import pytest

from repro.ml import PCA, TSNE
from repro.ml.metrics import neighborhood_purity
from tests.conftest import make_blobs


class TestPCA:
    def _correlated_data(self, n=200, seed=0):
        rng = np.random.default_rng(seed)
        latent = rng.normal(size=(n, 2))
        mix = np.array([[1.0, 0.5, 0.2, 0.0], [0.0, 0.3, 1.0, 0.8]])
        return latent @ mix + 0.01 * rng.normal(size=(n, 4))

    def test_explained_variance_ratio_sums_to_one(self):
        X = self._correlated_data()
        pca = PCA().fit(X)
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0, abs=1e-9)

    def test_ratio_decreasing(self):
        X = self._correlated_data()
        ratios = PCA().fit(X).explained_variance_ratio_
        assert np.all(np.diff(ratios) <= 1e-12)

    def test_two_components_capture_rank_two_data(self):
        X = self._correlated_data()
        pca = PCA(n_components=2).fit(X)
        assert pca.explained_variance_ratio_.sum() > 0.999

    def test_fraction_selects_enough_components(self):
        X = self._correlated_data()
        pca = PCA(n_components=0.99).fit(X)
        assert pca.n_components_ == 2

    def test_components_orthonormal(self):
        X = self._correlated_data()
        pca = PCA(n_components=2).fit(X)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(2), atol=1e-10)

    def test_transform_decorrelates(self):
        X = self._correlated_data()
        Z = PCA(n_components=2).fit_transform(X)
        cov = np.cov(Z.T)
        assert abs(cov[0, 1]) < 1e-8

    def test_inverse_transform_reconstructs(self):
        X = self._correlated_data()
        pca = PCA(n_components=2).fit(X)
        X_rec = pca.inverse_transform(pca.transform(X))
        np.testing.assert_allclose(X_rec, X, atol=0.1)

    def test_whiten_gives_unit_variance(self):
        X = self._correlated_data()
        Z = PCA(n_components=2, whiten=True).fit_transform(X)
        np.testing.assert_allclose(Z.std(axis=0, ddof=1), 1.0, atol=1e-6)

    def test_deterministic_sign_convention(self):
        X = self._correlated_data()
        a = PCA(n_components=2).fit(X).components_
        b = PCA(n_components=2).fit(X).components_
        np.testing.assert_allclose(a, b)

    def test_invalid_n_components(self):
        X = self._correlated_data()
        with pytest.raises(ValueError):
            PCA(n_components=100).fit(X)
        with pytest.raises(ValueError):
            PCA(n_components=0).fit(X)
        with pytest.raises(ValueError):
            PCA(n_components=1.5).fit(X)


class TestTSNE:
    def test_embedding_shape(self):
        X, _ = make_blobs(n_per_class=40, seed=30)
        Y = TSNE(n_iter=150, perplexity=15, random_state=0).fit_transform(X)
        assert Y.shape == (80, 2)
        assert np.all(np.isfinite(Y))

    def test_preserves_cluster_structure(self):
        X, y = make_blobs(n_per_class=60, separation=8.0, seed=31)
        Y = TSNE(n_iter=300, perplexity=20, random_state=0).fit_transform(X)
        # Well-separated input clusters stay separated in the embedding.
        purity = neighborhood_purity(Y, y, n_neighbors=5)
        assert purity > 0.9

    def test_kl_divergence_recorded(self):
        X, _ = make_blobs(n_per_class=30, seed=32)
        tsne = TSNE(n_iter=120, perplexity=10, random_state=0)
        tsne.fit_transform(X)
        assert np.isfinite(tsne.kl_divergence_)
        assert tsne.kl_divergence_ >= 0

    def test_deterministic_with_seed(self):
        X, _ = make_blobs(n_per_class=25, seed=33)
        a = TSNE(n_iter=100, perplexity=10, random_state=5).fit_transform(X)
        b = TSNE(n_iter=100, perplexity=10, random_state=5).fit_transform(X)
        np.testing.assert_allclose(a, b)

    def test_perplexity_too_large_raises(self):
        X, _ = make_blobs(n_per_class=10, seed=34)
        with pytest.raises(ValueError, match="perplexity"):
            TSNE(perplexity=50).fit_transform(X)

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            TSNE().fit_transform(np.zeros((3, 2)))

    def test_three_components(self):
        X, _ = make_blobs(n_per_class=25, seed=35)
        Y = TSNE(n_components=3, n_iter=80, perplexity=10, random_state=0).fit_transform(X)
        assert Y.shape == (50, 3)
