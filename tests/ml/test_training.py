"""Equivalence and determinism suite for the histogram training backend.

Mirrors ``tests/ml/test_backend.py``'s role for the predict path: the
binned grower's contract is (a) *exactness when bins exhaust the
distinct values* — same training-set partitions and predictions as the
exact argsort grower, (b) **bitwise determinism** — same seed + same
data ⇒ identical flat tree arrays, run after run, refit after refit,
and (c) *flat-backend compatibility* — hist-grown trees compile into
the PR-2 node tensor with bitwise-identical votes.
"""

import numpy as np
import pytest

from repro.ml import (
    BaggingClassifier,
    BinMapper,
    BinnedDataset,
    DecisionTreeClassifier,
    ExtraTreesClassifier,
    RandomForestClassifier,
)
from repro.ml.training import grow_tree_binned
from tests.conftest import make_blobs


def assert_trees_identical(a, b):
    """Bitwise equality of two fitted trees' flat arrays."""
    np.testing.assert_array_equal(a.tree_.feature, b.tree_.feature)
    np.testing.assert_array_equal(a.tree_.threshold, b.tree_.threshold)
    np.testing.assert_array_equal(a.tree_.children_left, b.tree_.children_left)
    np.testing.assert_array_equal(a.tree_.value, b.tree_.value)


def assert_ensembles_identical(a, b):
    assert len(a.estimators_) == len(b.estimators_)
    for ta, tb in zip(a.estimators_, b.estimators_):
        assert_trees_identical(ta, tb)


class TestBinMapper:
    def test_edges_monotone_and_bounded(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 5))
        mapper = BinMapper(max_bins=32).fit(X)
        for edges, n_bins in zip(mapper.bin_edges_, mapper.n_bins_):
            assert np.all(np.diff(edges) > 0)
            assert n_bins == len(edges) + 1
            assert n_bins <= 32

    def test_codes_order_preserving(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 3))
        mapper = BinMapper(max_bins=16).fit(X)
        codes = mapper.transform(X)
        for f in range(3):
            order = np.argsort(X[:, f], kind="stable")
            assert np.all(np.diff(codes[order, f].astype(int)) >= 0)

    def test_few_distinct_values_get_exact_bins(self):
        X = np.array([[0.0], [1.0], [2.0], [1.0], [0.0]])
        mapper = BinMapper(max_bins=256).fit(X)
        codes = mapper.transform(X)
        # One bin per distinct value: codes are the value ranks.
        assert codes.ravel().tolist() == [0, 1, 2, 1, 0]

    def test_code_threshold_consistency(self):
        # code <= b  must be equivalent to  x <= edges[b], including for
        # values never seen at fit time (the predict-path contract).
        rng = np.random.default_rng(2)
        X = rng.normal(size=(200, 1))
        mapper = BinMapper(max_bins=8).fit(X)
        edges = mapper.bin_edges_[0]
        probe = np.concatenate([edges, edges - 1e-12, edges + 1e-12, [-10, 10]])
        codes = mapper.transform(probe.reshape(-1, 1)).ravel()
        for b in range(len(edges)):
            np.testing.assert_array_equal(codes <= b, probe <= edges[b])

    def test_constant_feature_single_bin(self):
        X = np.column_stack([np.ones(50), np.arange(50, dtype=float)])
        mapper = BinMapper(max_bins=16).fit(X)
        assert mapper.n_bins_[0] == 1
        assert mapper.transform(X)[:, 0].max() == 0

    def test_max_bins_validated(self):
        with pytest.raises(ValueError):
            BinMapper(max_bins=1).fit(np.zeros((5, 1)))
        with pytest.raises(ValueError):
            BinMapper(max_bins=512).fit(np.zeros((5, 1)))

    def test_dataset_growth_buffer(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(100, 4))
        dataset = BinnedDataset(BinMapper(max_bins=64), X)
        base_edges = [e.copy() for e in dataset.mapper.bin_edges_]
        for _ in range(5):
            dataset.append(rng.normal(size=(10, 4)))
        assert dataset.n_rows == 150
        assert dataset.codes.shape == (150, 4)
        # Warm bins: appending never reshapes the edge set.
        for before, after in zip(base_edges, dataset.mapper.bin_edges_):
            np.testing.assert_array_equal(before, after)


class TestExactVsBinnedEquivalence:
    """With one bin per distinct value the binned grower is exact."""

    def low_cardinality_data(self, seed=0, n=240, d=5, levels=17):
        rng = np.random.default_rng(seed)
        X = rng.integers(0, levels, size=(n, d)).astype(float)
        y = (X[:, 0] + X[:, 1] + rng.normal(scale=2.0, size=n) > levels).astype(int)
        return X, y

    @pytest.mark.parametrize("max_depth", [1, 3, None])
    def test_same_training_predictions(self, max_depth):
        X, y = self.low_cardinality_data()
        exact = DecisionTreeClassifier(max_depth=max_depth, random_state=0).fit(X, y)
        hist = DecisionTreeClassifier(
            grower="hist", max_depth=max_depth, random_state=0
        ).fit(X, y)
        np.testing.assert_array_equal(exact.predict(X), hist.predict(X))

    def test_same_root_split(self):
        X, y = self.low_cardinality_data(seed=1)
        exact = DecisionTreeClassifier(max_depth=1).fit(X, y)
        hist = DecisionTreeClassifier(grower="hist", max_depth=1).fit(X, y)
        assert exact.tree_.feature[0] == hist.tree_.feature[0]
        assert exact.tree_.threshold[0] == hist.tree_.threshold[0]
        np.testing.assert_array_equal(exact.tree_.value, hist.tree_.value)

    def test_same_leaf_partition_full_depth(self):
        X, y = self.low_cardinality_data(seed=2)
        exact = DecisionTreeClassifier(random_state=0).fit(X, y)
        hist = DecisionTreeClassifier(grower="hist", random_state=0).fit(X, y)
        # Leaf ids differ, but co-membership of training rows must not.
        le, lh = exact.apply(X), hist.apply(X)
        _, inv_e = np.unique(le, return_inverse=True)
        _, inv_h = np.unique(lh, return_inverse=True)
        same_e = inv_e[:, None] == inv_e[None, :]
        same_h = inv_h[:, None] == inv_h[None, :]
        np.testing.assert_array_equal(same_e, same_h)

    def test_continuous_data_close_accuracy(self):
        X, y = make_blobs(n_per_class=150, separation=1.2, seed=5)
        X_test, y_test = make_blobs(n_per_class=150, separation=1.2, seed=6)
        exact = DecisionTreeClassifier(random_state=0).fit(X, y)
        hist = DecisionTreeClassifier(grower="hist", random_state=0).fit(X, y)
        assert abs(exact.score(X_test, y_test) - hist.score(X_test, y_test)) < 0.05


class TestHistGrowerProperties:
    def test_deterministic_across_runs(self):
        X, y = make_blobs(n_per_class=200, separation=1.0, seed=7)
        a = DecisionTreeClassifier(grower="hist", random_state=3).fit(X, y)
        b = DecisionTreeClassifier(grower="hist", random_state=3).fit(X, y)
        assert_trees_identical(a, b)

    def test_children_allocated_pairwise_for_backend(self):
        X, y = make_blobs(n_per_class=150, seed=8)
        tree = DecisionTreeClassifier(grower="hist", random_state=0).fit(X, y)
        feature = np.asarray(tree.tree_.feature)
        left = np.asarray(tree.tree_.children_left)
        right = np.asarray(tree.tree_.children_right)
        internal = feature >= 0
        np.testing.assert_array_equal(right[internal], left[internal] + 1)

    def test_flat_backend_bitwise_votes(self):
        X, y = make_blobs(n_per_class=120, separation=0.8, seed=9)
        for ensemble in (
            RandomForestClassifier(n_estimators=15, grower="hist", random_state=1),
            BaggingClassifier(
                DecisionTreeClassifier(grower="hist"),
                n_estimators=15,
                max_features=0.6,
                random_state=1,
            ),
            ExtraTreesClassifier(n_estimators=15, grower="hist", random_state=1),
        ):
            ensemble.fit(X, y)
            np.testing.assert_array_equal(
                ensemble.decisions_fast(X), ensemble.decisions(X)
            )

    def test_max_depth_and_min_samples_respected(self):
        X, y = make_blobs(n_per_class=200, separation=0.5, seed=10)
        tree = DecisionTreeClassifier(
            grower="hist", max_depth=4, min_samples_leaf=7, random_state=0
        ).fit(X, y)
        assert tree.get_depth() <= 4
        leaf_sizes = np.asarray(tree.tree_.n_node_samples)[
            np.asarray(tree.tree_.feature) == -1
        ]
        assert leaf_sizes.min() >= 7

    def test_weighted_fit_matches_bootstrap_replication(self):
        # The ensemble fast path feeds bootstrap multiplicities as
        # weights; growing on the replicated rows must agree.
        rng = np.random.default_rng(11)
        X, y = make_blobs(n_per_class=120, separation=1.0, seed=12)
        idx = rng.integers(0, len(y), size=len(y))
        weights = np.bincount(idx, minlength=len(y)).astype(float)
        weighted = DecisionTreeClassifier(grower="hist", max_depth=3).fit(
            X, y, sample_weight=weights
        )
        replicated = DecisionTreeClassifier(grower="hist", max_depth=3).fit(
            np.repeat(X, weights.astype(int), axis=0),
            np.repeat(y, weights.astype(int)),
        )
        np.testing.assert_array_equal(weighted.predict(X), replicated.predict(X))
        np.testing.assert_array_equal(
            weighted.tree_.value[0], replicated.tree_.value[0]
        )

    def test_fractional_weights_accepted(self):
        X, y = make_blobs(n_per_class=60, seed=13)
        w = np.linspace(0.1, 2.0, len(y))
        tree = DecisionTreeClassifier(grower="hist").fit(X, y, sample_weight=w)
        assert tree.tree_.value[0].sum() == pytest.approx(w.sum())

    def test_single_class_degenerates_to_leaf(self):
        X = np.random.default_rng(0).normal(size=(30, 3))
        tree = DecisionTreeClassifier(grower="hist").fit(X, np.zeros(30))
        assert tree.get_n_leaves() == 1

    def test_multiclass(self):
        rng = np.random.default_rng(14)
        X = np.vstack([rng.normal(3 * k, 1.0, (60, 4)) for k in range(3)])
        y = np.repeat(np.arange(3), 60)
        tree = DecisionTreeClassifier(grower="hist", random_state=0).fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_entropy_criterion(self):
        X, y = make_blobs(n_per_class=100, seed=15)
        tree = DecisionTreeClassifier(
            grower="hist", criterion="entropy", random_state=0
        ).fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_grow_tree_binned_direct(self):
        X, y = make_blobs(n_per_class=80, seed=16)
        dataset = BinnedDataset(BinMapper(max_bins=32), X)
        tree = grow_tree_binned(dataset.view(), y, 2, random_state=0)
        assert tree.node_count >= 3
        assert tree.value[0].tolist() == [80.0, 80.0]

    def test_invalid_grower_rejected(self):
        X, y = make_blobs(n_per_class=20, seed=17)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(grower="sorted").fit(X, y)


class TestSharedBinnedEnsembles:
    def test_ensemble_members_share_one_dataset(self):
        X, y = make_blobs(n_per_class=100, seed=18)
        forest = RandomForestClassifier(
            n_estimators=8, grower="hist", random_state=2
        ).fit(X, y)
        assert forest.supports_partial_refit()
        assert forest._binned_.n_rows == len(y)
        assert len(forest.estimators_) == 8

    def test_hist_forest_accuracy_matches_exact(self):
        X, y = make_blobs(n_per_class=150, separation=1.0, seed=19)
        X_test, y_test = make_blobs(n_per_class=150, separation=1.0, seed=20)
        exact = RandomForestClassifier(n_estimators=20, random_state=3).fit(X, y)
        hist = RandomForestClassifier(
            n_estimators=20, grower="hist", random_state=3
        ).fit(X, y)
        assert abs(exact.score(X_test, y_test) - hist.score(X_test, y_test)) < 0.05

    def test_ensemble_determinism(self):
        X, y = make_blobs(n_per_class=90, seed=21)
        a = RandomForestClassifier(n_estimators=6, grower="hist", random_state=4).fit(X, y)
        b = RandomForestClassifier(n_estimators=6, grower="hist", random_state=4).fit(X, y)
        assert_ensembles_identical(a, b)

    def test_exact_ensembles_do_not_gain_partial_refit(self):
        X, y = make_blobs(n_per_class=60, seed=22)
        forest = RandomForestClassifier(n_estimators=4, random_state=0).fit(X, y)
        assert not forest.supports_partial_refit()
        with pytest.raises(ValueError):
            forest.partial_refit(X[:5], y[:5])


class TestPartialRefit:
    def test_partial_refit_appends_and_learns_new_class(self):
        rng = np.random.default_rng(23)
        X, y = make_blobs(n_per_class=120, seed=24)
        forest = RandomForestClassifier(
            n_estimators=12, grower="hist", random_state=5
        ).fit(X, y)
        X_new = rng.normal(9.0, 0.5, size=(80, X.shape[1]))
        y_new = np.full(80, 2)
        forest.partial_refit(X_new, y_new)
        assert list(forest.classes_) == [0, 1, 2]
        assert forest._binned_.n_rows == len(y) + 80
        assert forest.score(X_new, y_new) > 0.95
        # Old classes are not forgotten.
        assert forest.score(X, y) > 0.9

    def test_partial_refit_recompiles_backend(self):
        X, y = make_blobs(n_per_class=80, seed=25)
        forest = RandomForestClassifier(
            n_estimators=6, grower="hist", random_state=6
        ).fit(X, y)
        first = forest.compile()
        forest.partial_refit(X[:10] + 5.0, y[:10])
        second = forest.compile()
        assert first is not second
        np.testing.assert_array_equal(
            forest.decisions_fast(X), forest.decisions(X)
        )

    def test_partial_refit_deterministic(self):
        X, y = make_blobs(n_per_class=80, seed=26)
        X_new = X[:30] + 4.0
        y_new = y[:30]
        a = RandomForestClassifier(n_estimators=5, grower="hist", random_state=7).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, grower="hist", random_state=7).fit(X, y)
        a.partial_refit(X_new, y_new)
        b.partial_refit(X_new, y_new)
        assert_ensembles_identical(a, b)

    def test_partial_refit_feature_width_checked(self):
        X, y = make_blobs(n_per_class=40, seed=27)
        forest = RandomForestClassifier(
            n_estimators=3, grower="hist", random_state=0
        ).fit(X, y)
        with pytest.raises(ValueError):
            forest.partial_refit(X[:5, :3], y[:5])

    def test_bagging_and_extra_trees_partial_refit(self):
        X, y = make_blobs(n_per_class=80, seed=28)
        bag = BaggingClassifier(
            DecisionTreeClassifier(grower="hist"), n_estimators=5, random_state=1
        ).fit(X, y)
        et = ExtraTreesClassifier(
            n_estimators=5, grower="hist", random_state=1
        ).fit(X, y)
        for ensemble in (bag, et):
            assert ensemble.supports_partial_refit()
            ensemble.partial_refit(X[:20] + 3.0, y[:20])
            assert ensemble._binned_.n_rows == len(y) + 20
            np.testing.assert_array_equal(
                ensemble.decisions_fast(X), ensemble.decisions(X)
            )
