"""Tests for LinearSVC and the SMO-based kernel SVC."""

import numpy as np
import pytest

from repro.ml import SVC, ConvergenceError, LinearSVC
from tests.conftest import make_blobs


class TestLinearSVC:
    def test_separable_high_accuracy(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = LinearSVC().fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.97

    def test_margin_orientation(self):
        X = np.array([[-2.0, 0.0], [-1.5, 0.1], [1.5, -0.1], [2.0, 0.0]])
        y = np.array([0, 0, 1, 1])
        model = LinearSVC().fit(X, y)
        assert model.coef_[0, 0] > 0  # positive class on positive x side

    def test_convexity_gives_stable_solution(self, blobs):
        # Two different random inits must land on (nearly) the same
        # hyperplane — the mechanism behind the paper's SVM diversity
        # failure.
        X, y = blobs
        a = LinearSVC(random_state=0).fit(X, y)
        b = LinearSVC(random_state=123).fit(X, y)
        cos = float(
            (a.coef_ @ b.coef_.T).item()
            / (np.linalg.norm(a.coef_) * np.linalg.norm(b.coef_))
        )
        assert cos > 0.999

    def test_multiclass_rejected(self):
        X = np.random.default_rng(0).normal(size=(9, 2))
        y = np.repeat([0, 1, 2], 3)
        with pytest.raises(ValueError, match="binary"):
            LinearSVC().fit(X, y)

    def test_invalid_c(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            LinearSVC(C=-1.0).fit(X, y)


class TestKernelSVC:
    def test_rbf_solves_xor(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(200, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        model = SVC(kernel="rbf", gamma=1.0, max_iter=60, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_linear_kernel_on_blobs(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = SVC(kernel="linear", max_iter=60, random_state=0).fit(
            X_train, y_train
        )
        assert model.score(X_test, y_test) > 0.95

    def test_poly_kernel_runs(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = SVC(kernel="poly", degree=2, max_iter=40, random_state=0).fit(
            X_train, y_train
        )
        assert model.score(X_test, y_test) > 0.9

    def test_support_vectors_subset_of_train(self, blobs):
        X, y = blobs
        model = SVC(max_iter=40, random_state=0).fit(X, y)
        assert 0 < len(model.support_) <= len(y)
        np.testing.assert_array_equal(model.support_vectors_, X[model.support_])

    def test_dual_coefs_bounded_by_c(self, blobs):
        X, y = blobs
        C = 0.7
        model = SVC(C=C, max_iter=40, random_state=0).fit(X, y)
        assert np.all(np.abs(model.dual_coef_) <= C + 1e-6)

    def test_convergence_error_mode(self):
        # Heavily overlapping data + tiny sweep budget cannot converge.
        X, y = make_blobs(n_per_class=300, separation=0.05, seed=4)
        with pytest.raises(ConvergenceError):
            SVC(max_iter=1, max_passes=50, tol=1e-9,
                on_no_convergence="raise", random_state=0).fit(X, y)

    def test_warn_mode_still_usable(self):
        X, y = make_blobs(n_per_class=100, separation=0.3, seed=5)
        with pytest.warns(UserWarning):
            model = SVC(max_iter=1, max_passes=50, tol=1e-9,
                        on_no_convergence="warn", random_state=0).fit(X, y)
        assert model.predict(X).shape == y.shape

    def test_unknown_kernel_raises(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError, match="kernel"):
            SVC(kernel="sigmoid").fit(X, y)

    def test_gamma_scale_and_auto(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        for gamma in ("scale", "auto", 0.2):
            model = SVC(gamma=gamma, max_iter=40, random_state=0).fit(
                X_train, y_train
            )
            assert model.score(X_test, y_test) > 0.9

    def test_invalid_gamma(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            SVC(gamma=-1.0).fit(X, y)
