"""Tests for bagging, random forest and voting ensembles."""

import numpy as np
import pytest

from repro.ml import (
    BaggingClassifier,
    DecisionTreeClassifier,
    GaussianNB,
    LogisticRegression,
    RandomForestClassifier,
    VotingClassifier,
)
from tests.conftest import make_blobs


class TestBaggingClassifier:
    def test_default_base_is_tree(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        bag = BaggingClassifier(n_estimators=8, random_state=0).fit(X_train, y_train)
        assert all(isinstance(m, DecisionTreeClassifier) for m in bag.estimators_)
        assert bag.score(X_test, y_test) > 0.95

    def test_estimators_accessible(self, blobs_split):
        # The paper's framework hinges on accessing the fitted base
        # classifiers (sklearn's estimators_ attribute).
        X_train, _, y_train, _ = blobs_split
        bag = BaggingClassifier(n_estimators=12, random_state=0).fit(X_train, y_train)
        assert len(bag.estimators_) == 12
        assert len(bag.estimators_samples_) == 12

    def test_decisions_shape_and_content(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        bag = BaggingClassifier(n_estimators=7, random_state=0).fit(X_train, y_train)
        votes = bag.decisions(X_test)
        assert votes.shape == (len(X_test), 7)
        assert set(np.unique(votes)) <= set(bag.classes_)

    def test_vote_distribution_row_stochastic(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        bag = BaggingClassifier(n_estimators=9, random_state=0).fit(X_train, y_train)
        dist = bag.vote_distribution(X_test)
        np.testing.assert_allclose(dist.sum(axis=1), 1.0)
        assert np.all(dist >= 0)

    def test_predict_is_majority_vote(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        bag = BaggingClassifier(n_estimators=11, random_state=0).fit(X_train, y_train)
        votes = bag.decisions(X_test)
        majority = np.array(
            [bag.classes_[np.argmax(np.bincount(
                np.searchsorted(bag.classes_, row), minlength=len(bag.classes_)
            ))] for row in votes]
        )
        np.testing.assert_array_equal(bag.predict(X_test), majority)

    def test_bootstrap_replicates_differ(self, blobs):
        X, y = blobs
        bag = BaggingClassifier(n_estimators=2, random_state=0).fit(X, y)
        assert not np.array_equal(
            bag.estimators_samples_[0], bag.estimators_samples_[1]
        )

    def test_max_samples_fraction(self, blobs):
        X, y = blobs
        bag = BaggingClassifier(n_estimators=3, max_samples=0.5, random_state=0).fit(X, y)
        assert all(len(s) == len(y) // 2 for s in bag.estimators_samples_)

    def test_max_features_subsampling(self, blobs):
        X, y = blobs
        bag = BaggingClassifier(
            n_estimators=4, max_features=0.5, random_state=0
        ).fit(X, y)
        n_feats = X.shape[1] // 2
        assert all(len(f) == n_feats for f in bag.estimators_features_)

    def test_every_replicate_sees_both_classes(self, blobs):
        X, y = blobs
        bag = BaggingClassifier(n_estimators=10, max_samples=0.1, random_state=0).fit(X, y)
        for sample_idx in bag.estimators_samples_:
            assert len(np.unique(y[sample_idx])) == 2

    def test_heterogeneous_base(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        bag = BaggingClassifier(
            LogisticRegression(), n_estimators=6, random_state=0
        ).fit(X_train, y_train)
        assert bag.score(X_test, y_test) > 0.95

    def test_deterministic_with_seed(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        a = BaggingClassifier(n_estimators=5, random_state=42).fit(X_train, y_train)
        b = BaggingClassifier(n_estimators=5, random_state=42).fit(X_train, y_train)
        np.testing.assert_array_equal(a.decisions(X_test), b.decisions(X_test))

    def test_invalid_params(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            BaggingClassifier(n_estimators=0).fit(X, y)
        with pytest.raises(ValueError):
            BaggingClassifier(max_samples=0.0).fit(X, y)
        with pytest.raises(ValueError):
            BaggingClassifier(on_base_failure="ignore").fit(X, y)


class TestRandomForest:
    def test_outperforms_single_tree_on_noisy_data(self):
        X, y = make_blobs(n_per_class=250, separation=1.4, seed=20)
        X_train, y_train = X[:350], y[:350]
        X_test, y_test = X[350:], y[350:]
        tree = DecisionTreeClassifier(random_state=0).fit(X_train, y_train)
        forest = RandomForestClassifier(n_estimators=40, random_state=0).fit(
            X_train, y_train
        )
        assert forest.score(X_test, y_test) >= tree.score(X_test, y_test)

    def test_decisions_interface(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        forest = RandomForestClassifier(n_estimators=15, random_state=0).fit(
            X_train, y_train
        )
        votes = forest.decisions(X_test)
        assert votes.shape == (len(X_test), 15)

    def test_predict_proba_smoother_than_votes(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(
            X_train, y_train
        )
        proba = forest.predict_proba(X_test)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_feature_importances_normalised(self, blobs):
        X, y = blobs
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)

    def test_max_depth_forwarded_to_trees(self, blobs):
        X, y = blobs
        forest = RandomForestClassifier(
            n_estimators=5, max_depth=2, random_state=0
        ).fit(X, y)
        assert all(t.get_depth() <= 2 for t in forest.estimators_)

    def test_no_bootstrap_mode(self, blobs):
        X, y = blobs
        forest = RandomForestClassifier(
            n_estimators=4, bootstrap=False, random_state=0
        ).fit(X, y)
        for sample_idx in forest.estimators_samples_:
            assert len(np.unique(sample_idx)) == len(sample_idx)

    def test_max_samples_reduces_replicate(self, blobs):
        X, y = blobs
        forest = RandomForestClassifier(
            n_estimators=3, max_samples=0.25, random_state=0
        ).fit(X, y)
        assert all(len(s) == len(y) // 4 for s in forest.estimators_samples_)


class TestVotingClassifier:
    def _members(self):
        return [
            ("lr", LogisticRegression()),
            ("nb", GaussianNB()),
            ("tree", DecisionTreeClassifier(max_depth=4, random_state=0)),
        ]

    def test_hard_voting_accuracy(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        vc = VotingClassifier(self._members()).fit(X_train, y_train)
        assert vc.score(X_test, y_test) > 0.95

    def test_soft_voting_proba(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        vc = VotingClassifier(self._members(), voting="soft").fit(X_train, y_train)
        proba = vc.predict_proba(X_test)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_named_access(self, blobs_split):
        X_train, _, y_train, _ = blobs_split
        vc = VotingClassifier(self._members()).fit(X_train, y_train)
        assert isinstance(vc.named_estimators_["nb"], GaussianNB)

    def test_decisions_columns_match_members(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        vc = VotingClassifier(self._members()).fit(X_train, y_train)
        assert vc.decisions(X_test).shape == (len(X_test), 3)

    def test_hard_predict_proba_raises(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        vc = VotingClassifier(self._members(), voting="hard").fit(X_train, y_train)
        with pytest.raises(ValueError):
            vc.predict_proba(X_test)

    def test_empty_members_raises(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            VotingClassifier([]).fit(X, y)

    def test_invalid_voting_raises(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            VotingClassifier(self._members(), voting="median").fit(X, y)
