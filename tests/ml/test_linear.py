"""Tests for LogisticRegression and Perceptron."""

import numpy as np
import pytest

from repro.ml import LogisticRegression, Perceptron
from tests.conftest import make_blobs


class TestLogisticRegressionBinary:
    def test_separable_high_accuracy(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = LogisticRegression().fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.97

    def test_proba_rows_sum_to_one(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        model = LogisticRegression().fit(X_train, y_train)
        proba = model.predict_proba(X_test)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-12)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_decision_function_sign_matches_predict(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        model = LogisticRegression().fit(X_train, y_train)
        scores = model.decision_function(X_test)
        preds = model.predict(X_test)
        np.testing.assert_array_equal(preds, model.classes_[(scores > 0).astype(int)])

    def test_regularisation_shrinks_weights(self, blobs):
        X, y = blobs
        loose = LogisticRegression(C=100.0).fit(X, y)
        tight = LogisticRegression(C=0.001).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_intercept_learned(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 2))
        y = (X[:, 0] > 0.8).astype(int)  # boundary away from origin
        with_b = LogisticRegression(fit_intercept=True).fit(X, y)
        assert abs(with_b.intercept_[0]) > 0.5

    def test_invalid_c_raises(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            LogisticRegression(C=0.0).fit(X, y)

    def test_single_class_raises(self):
        with pytest.raises(ValueError, match="2 classes"):
            LogisticRegression().fit(np.zeros((5, 2)) + np.arange(2), np.zeros(5))

    def test_string_labels(self):
        X, y_int = make_blobs(n_per_class=40, seed=11)
        y = np.where(y_int == 0, "benign", "malware")
        model = LogisticRegression().fit(X, y)
        assert set(np.unique(model.predict(X))) <= {"benign", "malware"}

    def test_sample_weight_replication(self, blobs):
        X, y = blobs
        w = np.ones(len(y), dtype=int)
        a = LogisticRegression(random_state=0).fit(X, y, sample_weight=w)
        b = LogisticRegression(random_state=0).fit(X, y)
        np.testing.assert_allclose(a.coef_, b.coef_, atol=1e-4)


class TestLogisticRegressionMulticlass:
    def test_three_classes_ovr(self):
        rng = np.random.default_rng(1)
        centers = np.array([[-4, 0], [4, 0], [0, 6]])
        X = np.vstack([rng.normal(c, 1.0, size=(60, 2)) for c in centers])
        y = np.repeat([0, 1, 2], 60)
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.95
        assert model.coef_.shape == (3, 2)

    def test_multiclass_proba_normalised(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(90, 3))
        y = np.repeat([0, 1, 2], 30)
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)


class TestPerceptron:
    def test_separable_converges(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = Perceptron(random_state=0).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.95

    def test_multiclass_rejected(self):
        X = np.zeros((6, 2)) + np.arange(2)
        y = np.array([0, 1, 2, 0, 1, 2])
        with pytest.raises(ValueError, match="binary"):
            Perceptron().fit(X, y)

    def test_decision_function_shape(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        model = Perceptron(random_state=1).fit(X_train, y_train)
        assert model.decision_function(X_test).shape == (len(X_test),)
