"""Tests for splitting and cross-validation."""

import numpy as np
import pytest

from repro.ml import GaussianNB, LogisticRegression
from repro.ml.model_selection import (
    GridSearchCV,
    KFold,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)


class TestTrainTestSplit:
    def test_sizes_fraction(self):
        X = np.arange(100).reshape(-1, 1)
        X_train, X_test = train_test_split(X, test_size=0.25, random_state=0)
        assert len(X_train) == 75 and len(X_test) == 25

    def test_sizes_absolute(self):
        X = np.arange(50).reshape(-1, 1)
        X_train, X_test = train_test_split(X, test_size=10, random_state=0)
        assert len(X_train) == 40 and len(X_test) == 10

    def test_no_overlap_covers_all(self):
        X = np.arange(60).reshape(-1, 1)
        X_train, X_test = train_test_split(X, test_size=0.3, random_state=1)
        combined = np.sort(np.concatenate([X_train, X_test]).ravel())
        np.testing.assert_array_equal(combined, np.arange(60))

    def test_multiple_arrays_aligned(self):
        X = np.arange(40).reshape(-1, 1)
        y = np.arange(40)
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_size=0.25, random_state=2
        )
        np.testing.assert_array_equal(X_train.ravel(), y_train)
        np.testing.assert_array_equal(X_test.ravel(), y_test)

    def test_stratified_preserves_ratio(self):
        y = np.array([0] * 80 + [1] * 20)
        X = np.arange(100).reshape(-1, 1)
        _, _, y_train, y_test = train_test_split(
            X, y, test_size=0.25, random_state=3, stratify=y
        )
        assert np.mean(y_test) == pytest.approx(0.2, abs=0.05)
        assert np.mean(y_train) == pytest.approx(0.2, abs=0.05)

    def test_deterministic_with_seed(self):
        X = np.arange(30).reshape(-1, 1)
        a = train_test_split(X, random_state=5)[1]
        b = train_test_split(X, random_state=5)[1]
        np.testing.assert_array_equal(a, b)

    def test_invalid_test_size(self):
        X = np.arange(10).reshape(-1, 1)
        with pytest.raises(ValueError):
            train_test_split(X, test_size=1.5)
        with pytest.raises(ValueError):
            train_test_split(X, test_size=10)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 1)), np.zeros(4))


class TestKFold:
    def test_covers_all_indices(self):
        kf = KFold(n_splits=4)
        X = np.arange(22)
        test_all = np.concatenate([test for _, test in kf.split(X)])
        np.testing.assert_array_equal(np.sort(test_all), np.arange(22))

    def test_train_test_disjoint(self):
        for train, test in KFold(n_splits=3).split(np.arange(12)):
            assert len(np.intersect1d(train, test)) == 0

    def test_fold_sizes_balanced(self):
        sizes = [len(test) for _, test in KFold(n_splits=4).split(np.arange(10))]
        assert sorted(sizes) == [2, 2, 3, 3]

    def test_shuffle_changes_order(self):
        X = np.arange(20)
        plain = [test.tolist() for _, test in KFold(4).split(X)]
        shuffled = [
            test.tolist()
            for _, test in KFold(4, shuffle=True, random_state=0).split(X)
        ]
        assert plain != shuffled

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)
        with pytest.raises(ValueError):
            list(KFold(n_splits=10).split(np.arange(5)))


class TestStratifiedKFold:
    def test_every_fold_has_both_classes(self):
        y = np.array([0] * 30 + [1] * 10)
        for _, test in StratifiedKFold(5).split(np.zeros((40, 1)), y):
            assert set(y[test]) == {0, 1}

    def test_class_ratio_preserved(self):
        y = np.array([0] * 60 + [1] * 20)
        for _, test in StratifiedKFold(4).split(np.zeros((80, 1)), y):
            assert np.mean(y[test]) == pytest.approx(0.25, abs=0.06)

    def test_requires_y(self):
        with pytest.raises(ValueError):
            list(StratifiedKFold(2).split(np.zeros((4, 1))))


class TestCrossValScore:
    def test_scores_reasonable_on_separable(self, blobs):
        X, y = blobs
        scores = cross_val_score(LogisticRegression(), X, y, cv=3)
        assert len(scores) == 3
        assert scores.mean() > 0.95

    def test_custom_scoring(self, blobs):
        X, y = blobs
        from repro.ml.metrics import f1_score

        scores = cross_val_score(GaussianNB(), X, y, cv=3, scoring=f1_score)
        assert np.all((0 <= scores) & (scores <= 1))


class TestGridSearch:
    def test_finds_better_params(self, blobs):
        X, y = blobs
        search = GridSearchCV(
            LogisticRegression(),
            {"C": [0.001, 1.0]},
            cv=3,
        )
        search.fit(X, y)
        assert search.best_params_["C"] in (0.001, 1.0)
        assert search.best_score_ > 0.9
        assert search.predict(X).shape == y.shape

    def test_empty_grid_raises(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            GridSearchCV(LogisticRegression(), {}).fit(X, y)
