"""Numerical-correctness tests: gradient checks and KKT conditions.

These verify the *optimisation mathematics* of the from-scratch
solvers, independent of downstream accuracy: analytic gradients match
finite differences, and the SMO solution satisfies the SVM
Karush-Kuhn-Tucker conditions.
"""

import numpy as np
import pytest

from repro.ml import SVC, LinearSVC, LogisticRegression, PlattScaler
from tests.conftest import make_blobs


def _finite_difference_gradient(objective, w, eps=1e-6):
    """Central-difference gradient of a scalar objective."""
    grad = np.zeros_like(w)
    for i in range(len(w)):
        w_plus = w.copy()
        w_minus = w.copy()
        w_plus[i] += eps
        w_minus[i] -= eps
        grad[i] = (objective(w_plus)[0] - objective(w_minus)[0]) / (2 * eps)
    return grad


class TestLogisticGradient:
    def _objective(self, X, y_signed, C):
        """Rebuild the exact objective LogisticRegression minimises."""
        n = len(y_signed)
        alpha = 1.0 / (C * n)

        def fn(w_full):
            w, b = w_full[:-1], w_full[-1]
            margins = y_signed * (X @ w + b)
            loss = np.mean(np.logaddexp(0.0, -margins)) + 0.5 * alpha * (w @ w)
            s = 1.0 / (1.0 + np.exp(margins))
            grad_w = -(X.T @ (y_signed * s)) / n + alpha * w
            grad_b = -np.mean(y_signed * s)
            return loss, np.concatenate([grad_w, [grad_b]])

        return fn

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_analytic_matches_finite_difference(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(40, 3))
        y_signed = np.where(rng.random(40) > 0.5, 1.0, -1.0)
        objective = self._objective(X, y_signed, C=1.0)
        w = rng.normal(size=4)
        _, analytic = objective(w)
        numeric = _finite_difference_gradient(objective, w)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-7)

    def test_fitted_solution_is_stationary(self, blobs):
        X, y = blobs
        model = LogisticRegression(C=1.0, max_iter=500, tol=1e-10).fit(X, y)
        y_signed = np.where(y == model.classes_[1], 1.0, -1.0)
        objective = self._objective(X, y_signed, C=1.0)
        w_full = np.concatenate([model.coef_[0], model.intercept_])
        _, grad = objective(w_full)
        assert np.linalg.norm(grad) < 1e-3


class TestLinearSvcGradient:
    def _objective(self, X, y_signed, C):
        n = len(y_signed)
        alpha = 1.0 / (C * n)

        def fn(w_full):
            w, b = w_full[:-1], w_full[-1]
            margins = y_signed * (X @ w + b)
            slack = np.maximum(0.0, 1.0 - margins)
            loss = np.mean(slack**2) + 0.5 * alpha * (w @ w)
            coeff = -2.0 * y_signed * slack / n
            grad_w = X.T @ coeff + alpha * w
            return loss, np.concatenate([grad_w, [coeff.sum()]])

        return fn

    @pytest.mark.parametrize("seed", [3, 4])
    def test_analytic_matches_finite_difference(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 4))
        y_signed = np.where(rng.random(30) > 0.5, 1.0, -1.0)
        objective = self._objective(X, y_signed, C=0.5)
        w = rng.normal(size=5)
        _, analytic = objective(w)
        numeric = _finite_difference_gradient(objective, w)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)


class TestSmoKkt:
    def test_kkt_conditions_on_separable_data(self):
        X, y = make_blobs(n_per_class=60, separation=4.0, seed=10)
        C = 1.0
        model = SVC(C=C, kernel="rbf", gamma=0.5, max_iter=200,
                    max_passes=10, tol=1e-4, random_state=0)
        model.fit(X, y)

        decision = model.decision_function(X)
        y_signed = np.where(y == model.classes_[1], 1.0, -1.0)
        margins = y_signed * decision

        # Reconstruct per-sample alphas from the stored support set.
        alphas = np.zeros(len(y))
        alphas[model.support_] = np.abs(model.dual_coef_)

        tol = 0.05
        # Non-support vectors must satisfy the margin.
        non_sv = alphas < 1e-8
        assert np.all(margins[non_sv] >= 1.0 - tol)
        # Free support vectors must lie on the margin.
        free = (alphas > 1e-6) & (alphas < C - 1e-6)
        if free.any():
            np.testing.assert_allclose(margins[free], 1.0, atol=0.1)
        # Bound support vectors sit inside the margin (or on it).
        bound = alphas >= C - 1e-6
        assert np.all(margins[bound] <= 1.0 + tol)

    def test_dual_sum_constraint(self):
        X, y = make_blobs(n_per_class=50, separation=3.0, seed=11)
        model = SVC(C=1.0, max_iter=100, random_state=0).fit(X, y)
        # sum_i alpha_i y_i = 0 is preserved by every SMO pair update.
        assert abs(model.dual_coef_.sum()) < 1e-8


class TestPlattGradient:
    def test_fitted_sigmoid_is_stationary(self):
        rng = np.random.default_rng(12)
        scores = rng.normal(size=500)
        y = (scores + 0.5 * rng.normal(size=500) > 0).astype(int)
        scaler = PlattScaler().fit(scores, y)

        n_pos = int(np.sum(y == 1))
        n_neg = len(y) - n_pos
        t = np.where(y == 1, (n_pos + 1.0) / (n_pos + 2.0), 1.0 / (n_neg + 2.0))

        def objective(params):
            a, b = params
            z = a * scores + b
            loss = np.mean(np.logaddexp(0.0, z) - t * z)
            p = 1.0 / (1.0 + np.exp(-z))
            return loss, np.array(
                [np.mean((p - t) * scores), np.mean(p - t)]
            )

        _, grad = objective(np.array([scaler.a_, scaler.b_]))
        assert np.linalg.norm(grad) < 1e-4
