"""Equivalence suite for the low-precision inference kernels.

Two contracts, two strictness levels:

* the **quantized** (uint8 bin-code) kernel must reproduce the float64
  flat kernel *bitwise* — every hist-tree threshold is exactly a bin
  edge, so rewriting ``x > edges[b]`` as ``code > b`` cannot change a
  single vote;
* the **float32** kernel narrows thresholds and features with one
  correct rounding each, so votes may flip only on rows that sit within
  rounding distance of a threshold — the fuzz below checks agreement on
  generic data and pins the dtype plumbing exactly.

The vectorized :meth:`BinMapper.transform` is pinned bitwise against
the per-feature reference loop, including the degenerate inputs that
stress the sorted-global-edges construction (constant features, exact
edge values, out-of-range probes).
"""

import pickle

import numpy as np
import pytest

from repro.ml import (
    BaggingClassifier,
    BinMapper,
    DecisionTreeClassifier,
    ExtraTreesClassifier,
    QuantizedForest,
    RandomForestClassifier,
    compile_quantized_forest,
)
from repro.ml.backend import COMPILE_MODES, BackendCompileError, FlatForest
from repro.ml.training import quantize_with_tables
from tests.conftest import make_blobs


def hist_forest(n_estimators=12, max_depth=None, seed=0, n_per_class=120):
    X, y = make_blobs(n_per_class=n_per_class, seed=seed)
    ensemble = RandomForestClassifier(
        n_estimators=n_estimators,
        max_depth=max_depth,
        random_state=seed,
        grower="hist",
    ).fit(X, y)
    return ensemble, X


def assert_votes_identical(ensemble, X):
    """Quantized, flat and legacy votes all agree bitwise."""
    legacy = ensemble.decisions(X)
    flat = ensemble.compile(mode="flat").decisions(X)
    quant = ensemble.compile(mode="quantized").decisions(X)
    np.testing.assert_array_equal(flat, legacy)
    np.testing.assert_array_equal(quant, legacy)


class TestVectorizedTransform:
    """Satellite: BinMapper.transform == transform_reference, bitwise."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("max_bins", [2, 17, 256])
    def test_random_matrices(self, seed, max_bins):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(200, 6)) * rng.gamma(1.0, size=6)
        mapper = BinMapper(max_bins=max_bins).fit(X)
        probe = rng.normal(scale=3.0, size=(97, 6))
        np.testing.assert_array_equal(
            mapper.transform(probe), mapper.transform_reference(probe)
        )

    def test_degenerate_columns(self):
        rng = np.random.default_rng(5)
        X = np.column_stack(
            [
                np.full(150, 3.25),                  # constant → no edges
                rng.integers(0, 3, size=150),        # few distinct values
                rng.normal(size=150),                # > max_bins distinct
                np.repeat([-1.0, 0.0, 1.0], 50),     # exact repeated values
            ]
        )
        mapper = BinMapper(max_bins=8).fit(X)
        probe = np.vstack([X, X + 1e3, X - 1e3, np.zeros((3, 4))])
        np.testing.assert_array_equal(
            mapper.transform(probe), mapper.transform_reference(probe)
        )

    def test_exact_edge_values(self):
        """Probes sitting exactly on bin edges take the left bin."""
        X = np.random.default_rng(9).normal(size=(300, 3))
        mapper = BinMapper(max_bins=32).fit(X)
        edges = mapper.bin_edges_
        probe = np.column_stack(
            [np.resize(edges[f], 40) for f in range(3)]
        )
        codes = mapper.transform(probe)
        np.testing.assert_array_equal(codes, mapper.transform_reference(probe))
        # side="left": a value equal to edges[b] has exactly b edges
        # strictly below it, so it lands in bin b (the left side).
        for f in range(3):
            expected = np.searchsorted(edges[f], probe[:, f], side="left")
            np.testing.assert_array_equal(codes[:, f], expected)

    def test_quantize_with_tables_matches_transform(self):
        X = np.random.default_rng(2).normal(size=(120, 5))
        mapper = BinMapper(max_bins=64).fit(X)
        np.testing.assert_array_equal(
            quantize_with_tables(
                mapper._edges_sorted_, mapper._edge_prefix_, X
            ),
            mapper.transform(X),
        )

    def test_legacy_pickle_without_tables(self):
        """Old pickles (no flat-quantizer tables) rebuild them lazily."""
        X = np.random.default_rng(3).normal(size=(100, 4))
        mapper = BinMapper(max_bins=16).fit(X)
        reference = mapper.transform(X)
        del mapper._edges_sorted_, mapper._edge_prefix_
        np.testing.assert_array_equal(mapper.transform(X), reference)


class TestQuantizedVoteIdentity:
    """Tentpole: uint8 traversal is vote-identical by construction."""

    @pytest.mark.parametrize("n_estimators", [1, 9, 40])
    def test_random_forest(self, n_estimators):
        ensemble, X = hist_forest(n_estimators=n_estimators, seed=11)
        probe = np.vstack([X, np.random.default_rng(0).normal(size=(80, 6))])
        assert_votes_identical(ensemble, probe)

    def test_extra_trees(self):
        X, y = make_blobs(n_per_class=100, seed=21)
        ensemble = ExtraTreesClassifier(
            n_estimators=15, random_state=1, grower="hist"
        ).fit(X, y)
        assert_votes_identical(ensemble, X)

    def test_bagging_hist_prototype(self):
        X, y = make_blobs(n_per_class=100, seed=22)
        ensemble = BaggingClassifier(
            DecisionTreeClassifier(grower="hist"),
            n_estimators=10,
            random_state=2,
        ).fit(X, y)
        assert_votes_identical(ensemble, X)

    def test_stumps(self):
        ensemble, X = hist_forest(n_estimators=20, max_depth=1, seed=13)
        assert_votes_identical(ensemble, X)

    def test_adversarial_probes_on_the_bin_grid(self):
        """Rows placed exactly at every threshold still vote identically."""
        ensemble, X = hist_forest(n_estimators=8, seed=17)
        flat = ensemble.compile(mode="flat")
        internal = np.isfinite(flat.threshold)
        rng = np.random.default_rng(17)
        cuts = flat.threshold[internal]
        feats = flat.fg[internal, 0] % X.shape[1]
        probe = X[rng.integers(len(X), size=len(cuts))].copy()
        probe[np.arange(len(cuts)), feats] = cuts
        assert_votes_identical(ensemble, probe)

    def test_backend_structure(self):
        ensemble, X = hist_forest(n_estimators=6, seed=3)
        backend = ensemble.compile(mode="quantized")
        assert isinstance(backend, QuantizedForest)
        assert backend.feature_dtype == np.uint8
        assert backend.n_members == 6
        assert backend.packed.dtype == np.int64
        # Leaves carry the sentinel code 255 and self-loop.
        codes = backend.packed & 0xFF
        gotos = backend.packed >> 32
        leaves = codes == 255
        np.testing.assert_array_equal(
            gotos[leaves], np.nonzero(leaves)[0]
        )
        # encode() passes uint8 codes straight through (zero-copy path).
        pre = backend.encode(X)
        assert pre.dtype == np.uint8
        assert backend.encode(pre) is not None
        np.testing.assert_array_equal(backend.encode(pre), pre)

    def test_compile_quantized_forest_direct(self):
        ensemble, X = hist_forest(n_estimators=5, seed=4)
        flat = ensemble.compile(mode="flat")
        quant = compile_quantized_forest(flat, ensemble._binned_.mapper)
        np.testing.assert_array_equal(quant.decisions(X), flat.decisions(X))

    def test_quantized_survives_pickle(self):
        ensemble, X = hist_forest(n_estimators=7, seed=5)
        reference = ensemble.compile(mode="quantized").decisions(X)
        clone = pickle.loads(pickle.dumps(ensemble))
        np.testing.assert_array_equal(
            clone.compile(mode="quantized").decisions(X), reference
        )


class TestCompileModes:
    def test_mode_lattice(self):
        assert COMPILE_MODES == ("flat", "float32", "quantized")

    def test_unknown_mode_rejected(self):
        ensemble, _ = hist_forest(n_estimators=3)
        with pytest.raises(ValueError, match="unknown compile mode"):
            ensemble.compile(mode="uint4")

    def test_exact_grower_cannot_quantize(self):
        X, y = make_blobs(n_per_class=80, seed=6)
        ensemble = RandomForestClassifier(
            n_estimators=5, random_state=0, grower="exact"
        ).fit(X, y)
        with pytest.raises(BackendCompileError, match="hist"):
            ensemble.compile(mode="quantized")

    def test_modes_cached_separately_and_sticky(self):
        ensemble, X = hist_forest(n_estimators=4, seed=7)
        flat = ensemble.compile(mode="flat")
        quant = ensemble.compile(mode="quantized")
        assert ensemble.compile(mode="flat") is flat
        assert ensemble.compile(mode="quantized") is quant
        # Sticky: a no-argument compile reuses the last requested mode.
        assert ensemble.compile() is quant
        # decisions_fast serves the sticky mode.
        np.testing.assert_array_equal(
            ensemble.decisions_fast(X), quant.decisions(X)
        )

    def test_refit_invalidates_all_modes(self):
        ensemble, X = hist_forest(n_estimators=4, seed=8)
        quant = ensemble.compile(mode="quantized")
        X2, y2 = make_blobs(n_per_class=90, seed=80)
        ensemble.fit(X2, y2)
        rebuilt = ensemble.compile(mode="quantized")
        assert rebuilt is not quant
        np.testing.assert_array_equal(
            rebuilt.decisions(X2), ensemble.decisions(X2)
        )

    def test_float32_backend_properties(self):
        ensemble, X = hist_forest(n_estimators=10, seed=9)
        flat = ensemble.compile(mode="flat")
        f32 = ensemble.compile(mode="float32")
        assert isinstance(f32, FlatForest)
        assert f32.feature_dtype == np.float32
        assert f32.threshold.dtype == np.float32
        np.testing.assert_array_equal(
            f32.threshold, flat.threshold.astype(np.float32)
        )
        # Structure arrays are shared, not copied.
        assert f32.fg is flat.fg
        assert f32.leaf_label is flat.leaf_label
        # cast() to the same dtype is the identity.
        assert flat.cast(np.float64) is flat
        assert f32.cast(np.float32) is f32

    def test_float32_vote_agreement_fuzz(self):
        """On generic (off-threshold) rows, f32 votes match f64."""
        ensemble, X = hist_forest(n_estimators=20, seed=10, n_per_class=150)
        flat = ensemble.compile(mode="flat")
        f32 = ensemble.compile(mode="float32")
        probe = np.random.default_rng(10).normal(size=(400, 6))
        v64 = flat.decisions(probe)
        v32 = f32.decisions(probe)
        agreement = np.mean(v64 == v32)
        assert agreement >= 0.999, f"f32 vote agreement {agreement:.5f}"
