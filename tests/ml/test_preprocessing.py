"""Tests for scalers and label encoding."""

import numpy as np
import pytest

from repro.ml import LabelEncoder, MinMaxScaler, NotFittedError, RobustScaler, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        X = np.random.default_rng(0).normal(loc=5, scale=3, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_maps_to_zero(self):
        X = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_inverse_roundtrip(self):
        X = np.random.default_rng(1).normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_transform_uses_train_stats(self):
        X_train = np.zeros((5, 2)) + [[1.0, 2.0]]
        X_train[0] = [3.0, 4.0]
        scaler = StandardScaler().fit(X_train)
        Z_new = scaler.transform([[1.0, 2.0]])
        expected = ([1.0, 2.0] - scaler.mean_) / scaler.scale_
        np.testing.assert_allclose(Z_new[0], expected)

    def test_without_mean(self):
        X = np.random.default_rng(2).normal(loc=10, size=(30, 2))
        Z = StandardScaler(with_mean=False).fit_transform(X)
        assert Z.mean() > 1.0  # mean not removed

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform([[1.0]])

    def test_feature_count_mismatch(self):
        scaler = StandardScaler().fit(np.zeros((4, 3)) + np.arange(3))
        with pytest.raises(ValueError, match="features"):
            scaler.transform(np.zeros((2, 2)))


class TestMinMaxScaler:
    def test_range_default(self):
        X = np.random.default_rng(3).normal(size=(40, 3))
        Z = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(Z.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.max(axis=0), 1.0, atol=1e-12)

    def test_custom_range(self):
        X = np.random.default_rng(4).normal(size=(40, 2))
        Z = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(X)
        np.testing.assert_allclose(Z.min(axis=0), -1.0, atol=1e-12)
        np.testing.assert_allclose(Z.max(axis=0), 1.0, atol=1e-12)

    def test_inverse_roundtrip(self):
        X = np.random.default_rng(5).normal(size=(30, 2))
        scaler = MinMaxScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X, atol=1e-12
        )

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 0.0)).fit(np.zeros((3, 1)) + np.arange(3)[:, None])

    def test_constant_feature_no_nan(self):
        X = np.full((5, 1), 2.0)
        Z = MinMaxScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))


class TestRobustScaler:
    def test_median_removed(self):
        X = np.random.default_rng(6).normal(loc=100, size=(101, 3))
        Z = RobustScaler().fit_transform(X)
        np.testing.assert_allclose(np.median(Z, axis=0), 0.0, atol=1e-10)

    def test_outlier_resistant(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(200, 1))
        X_outlier = X.copy()
        X_outlier[0] = 1e6
        s1 = RobustScaler().fit(X).scale_
        s2 = RobustScaler().fit(X_outlier).scale_
        assert s2[0] == pytest.approx(s1[0], rel=0.2)

    def test_invalid_quantiles(self):
        with pytest.raises(ValueError):
            RobustScaler(quantile_range=(80.0, 20.0)).fit(np.zeros((5, 1)) + np.arange(5)[:, None])


class TestLabelEncoder:
    def test_roundtrip(self):
        y = np.array(["malware", "benign", "malware", "benign"])
        enc = LabelEncoder().fit(y)
        codes = enc.transform(y)
        np.testing.assert_array_equal(enc.inverse_transform(codes), y)

    def test_codes_are_sorted_order(self):
        enc = LabelEncoder().fit([3, 1, 2])
        np.testing.assert_array_equal(enc.classes_, [1, 2, 3])
        np.testing.assert_array_equal(enc.transform([1, 2, 3]), [0, 1, 2])

    def test_unseen_label_raises(self):
        enc = LabelEncoder().fit([0, 1])
        with pytest.raises(ValueError, match="unseen"):
            enc.transform([2])

    def test_out_of_range_code_raises(self):
        enc = LabelEncoder().fit([0, 1])
        with pytest.raises(ValueError):
            enc.inverse_transform([5])

    def test_fit_transform(self):
        codes = LabelEncoder().fit_transform(["b", "a", "b"])
        np.testing.assert_array_equal(codes, [1, 0, 1])
