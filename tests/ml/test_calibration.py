"""Tests for Platt scaling and the calibrated classifier wrapper."""

import numpy as np
import pytest

from repro.ml import CalibratedClassifier, LinearSVC, LogisticRegression, PlattScaler
from tests.conftest import make_blobs


class TestPlattScaler:
    def test_monotone_in_score(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=400)
        y = (scores + 0.3 * rng.normal(size=400) > 0).astype(int)
        scaler = PlattScaler().fit(scores, y)
        p = scaler.predict_proba(np.array([-2.0, 0.0, 2.0]))[:, 1]
        assert p[0] < p[1] < p[2]

    def test_probabilities_valid(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=200)
        y = (scores > 0).astype(int)
        proba = PlattScaler().fit(scores, y).predict_proba(scores)
        assert np.all((proba >= 0) & (proba <= 1))
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-12)

    def test_informative_scores_calibrate_well(self):
        rng = np.random.default_rng(2)
        # True model: p = sigmoid(2s); generate labels accordingly.
        scores = rng.normal(size=4000)
        p_true = 1.0 / (1.0 + np.exp(-2.0 * scores))
        y = (rng.random(4000) < p_true).astype(int)
        scaler = PlattScaler().fit(scores, y)
        assert scaler.a_ == pytest.approx(2.0, abs=0.3)
        assert scaler.b_ == pytest.approx(0.0, abs=0.2)

    def test_requires_binary(self):
        with pytest.raises(ValueError):
            PlattScaler().fit([0.1, 0.2, 0.3], [0, 1, 2])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            PlattScaler().fit([0.1, 0.2], [0])


class TestCalibratedClassifier:
    def test_accuracy_preserved(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = CalibratedClassifier(LinearSVC(), random_state=0).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.95

    def test_confidence_in_unit_interval(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        model = CalibratedClassifier(LinearSVC(), random_state=0).fit(X_train, y_train)
        conf = model.confidence(X_test)
        assert np.all((conf >= 0.5 - 1e-9) & (conf <= 1.0 + 1e-9))

    def test_works_with_proba_models(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = CalibratedClassifier(LogisticRegression(), random_state=0).fit(
            X_train, y_train
        )
        assert model.score(X_test, y_test) > 0.95

    def test_overconfident_on_far_ood(self, blobs_split):
        # The paper's warning: Platt confidence stays HIGH on inputs far
        # from the training data.
        X_train, _, y_train, _ = blobs_split
        model = CalibratedClassifier(LinearSVC(), random_state=0).fit(X_train, y_train)
        X_far = np.full((10, X_train.shape[1]), 50.0)
        assert model.confidence(X_far).mean() > 0.9

    def test_invalid_fraction(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            CalibratedClassifier(LinearSVC(), calibration_fraction=1.5).fit(X, y)
