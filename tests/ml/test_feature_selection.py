"""Tests for feature scoring and selection."""

import numpy as np
import pytest

from repro.ml import SelectKBest, VarianceThreshold, f_classif, mutual_info_classif


def _informative_data(seed=0, n=300):
    """Features 0-1 informative, 2-3 pure noise."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=n)
    X = np.column_stack(
        [
            y * 2.0 + rng.normal(scale=0.5, size=n),
            -y * 1.5 + rng.normal(scale=0.5, size=n),
            rng.normal(size=n),
            rng.normal(size=n),
        ]
    )
    return X, y


class TestFClassif:
    def test_informative_score_higher(self):
        X, y = _informative_data()
        scores = f_classif(X, y)
        assert scores[0] > scores[2] * 10
        assert scores[1] > scores[3] * 10

    def test_constant_feature_zero(self):
        X, y = _informative_data()
        X = np.column_stack([X, np.ones(len(y))])
        scores = f_classif(X, y)
        assert scores[-1] == 0.0

    def test_requires_two_classes(self):
        with pytest.raises(ValueError):
            f_classif(np.zeros((5, 2)) + np.arange(2), np.zeros(5))


class TestMutualInfo:
    def test_informative_score_higher(self):
        X, y = _informative_data(seed=1)
        scores = mutual_info_classif(X, y)
        assert scores[0] > scores[2] + 0.1

    def test_nonnegative(self):
        X, y = _informative_data(seed=2)
        assert np.all(mutual_info_classif(X, y) >= 0)

    def test_independent_feature_near_zero(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(2000, 1))
        y = rng.integers(0, 2, size=2000)
        assert mutual_info_classif(X, y)[0] < 0.05

    def test_invalid_bins(self):
        X, y = _informative_data()
        with pytest.raises(ValueError):
            mutual_info_classif(X, y, n_bins=1)


class TestSelectKBest:
    def test_keeps_informative_features(self):
        X, y = _informative_data(seed=4)
        selector = SelectKBest(k=2).fit(X, y)
        np.testing.assert_array_equal(selector.get_support(indices=True), [0, 1])

    def test_transform_shape(self):
        X, y = _informative_data(seed=5)
        Z = SelectKBest(k=3).fit_transform(X, y)
        assert Z.shape == (len(y), 3)

    def test_k_all(self):
        X, y = _informative_data(seed=6)
        Z = SelectKBest(k="all").fit_transform(X, y)
        assert Z.shape == X.shape

    def test_custom_score_func(self):
        X, y = _informative_data(seed=7)
        selector = SelectKBest(mutual_info_classif, k=2).fit(X, y)
        assert set(selector.get_support(indices=True)) == {0, 1}

    def test_invalid_k(self):
        X, y = _informative_data()
        with pytest.raises(ValueError):
            SelectKBest(k=0).fit(X, y)
        with pytest.raises(ValueError):
            SelectKBest(k=100).fit(X, y)

    def test_transform_feature_mismatch(self):
        X, y = _informative_data()
        selector = SelectKBest(k=2).fit(X, y)
        with pytest.raises(ValueError):
            selector.transform(X[:, :2])


class TestVarianceThreshold:
    def test_drops_constant(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = VarianceThreshold().fit_transform(X)
        assert Z.shape == (10, 1)

    def test_threshold_level(self):
        rng = np.random.default_rng(8)
        X = np.column_stack(
            [rng.normal(scale=0.01, size=100), rng.normal(scale=1.0, size=100)]
        )
        selector = VarianceThreshold(threshold=0.01).fit(X)
        np.testing.assert_array_equal(selector.get_support(indices=True), [1])

    def test_all_dropped_raises(self):
        X = np.ones((5, 2))
        with pytest.raises(ValueError):
            VarianceThreshold().fit(X)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            VarianceThreshold(threshold=-1.0).fit(np.zeros((3, 1)) + np.arange(3)[:, None])
