"""Tests for the CART decision tree."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier
from tests.conftest import make_blobs


class TestFitBasics:
    def test_perfectly_separable_fits_exactly(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        np.testing.assert_array_equal(tree.predict(X), y)

    def test_threshold_between_classes(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        root_threshold = tree.tree_.threshold[0]
        assert 1.0 <= root_threshold < 2.0

    def test_pure_node_stops(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        y = np.zeros(20, dtype=int)
        y[0] = 1  # still needs both classes for a valid fit
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.tree_.node_count >= 1

    def test_single_class_tree_predicts_it(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        y = np.ones(10, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        np.testing.assert_array_equal(tree.predict(X), 1)

    def test_deterministic_given_seed(self, blobs):
        X, y = blobs
        t1 = DecisionTreeClassifier(max_features="sqrt", random_state=3).fit(X, y)
        t2 = DecisionTreeClassifier(max_features="sqrt", random_state=3).fit(X, y)
        np.testing.assert_array_equal(t1.predict(X), t2.predict(X))

    def test_high_accuracy_on_blobs(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=8).fit(X, y)
        assert tree.score(X, y) > 0.98


class TestHyperparameters:
    def test_max_depth_zero_is_stump_leaf(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=0).fit(X, y)
        assert tree.get_depth() == 0
        assert tree.get_n_leaves() == 1

    def test_max_depth_respected(self, blobs):
        X, y = blobs
        for depth in (1, 2, 4):
            tree = DecisionTreeClassifier(max_depth=depth).fit(X, y)
            assert tree.get_depth() <= depth

    def test_min_samples_leaf_respected(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(min_samples_leaf=10).fit(X, y)
        leaf_mask = np.asarray(tree.tree_.feature) == -1
        assert np.asarray(tree.tree_.n_node_samples)[leaf_mask].min() >= 10

    def test_min_samples_split_respected(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(min_samples_split=50).fit(X, y)
        internal = np.asarray(tree.tree_.feature) >= 0
        assert np.asarray(tree.tree_.n_node_samples)[internal].min() >= 50

    def test_entropy_criterion_works(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(criterion="entropy", max_depth=6).fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_invalid_criterion_raises(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError, match="criterion"):
            DecisionTreeClassifier(criterion="bogus").fit(X, y)

    def test_invalid_min_samples(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1).fit(X, y)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0).fit(X, y)

    @pytest.mark.parametrize("max_features", ["sqrt", "log2", 3, 0.5, None])
    def test_max_features_variants(self, blobs, max_features):
        X, y = blobs
        tree = DecisionTreeClassifier(
            max_features=max_features, random_state=0, max_depth=6
        ).fit(X, y)
        assert tree.score(X, y) > 0.85

    def test_invalid_max_features(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=100).fit(X, y)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=0.0).fit(X, y)

    def test_min_impurity_decrease_prunes(self, blobs):
        X, y = blobs
        full = DecisionTreeClassifier().fit(X, y)
        pruned = DecisionTreeClassifier(min_impurity_decrease=0.2).fit(X, y)
        assert pruned.tree_.node_count <= full.tree_.node_count


class TestPrediction:
    def test_proba_rows_sum_to_one(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        tree = DecisionTreeClassifier(max_depth=4).fit(X_train, y_train)
        proba = tree.predict_proba(X_test)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_predict_matches_argmax_proba(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        tree = DecisionTreeClassifier(max_depth=4).fit(X_train, y_train)
        proba = tree.predict_proba(X_test)
        np.testing.assert_array_equal(
            tree.predict(X_test), tree.classes_[np.argmax(proba, axis=1)]
        )

    def test_apply_returns_leaves(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        tree = DecisionTreeClassifier(max_depth=3).fit(X_train, y_train)
        leaves = tree.apply(X_test)
        leaf_ids = np.flatnonzero(np.asarray(tree.tree_.feature) == -1)
        assert set(leaves.tolist()) <= set(leaf_ids.tolist())

    def test_string_labels_supported(self):
        X, y_int = make_blobs(n_per_class=30, seed=9)
        y = np.where(y_int == 0, "benign", "malware")
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        preds = tree.predict(X)
        assert set(np.unique(preds)) <= {"benign", "malware"}


class TestSampleWeight:
    def test_integer_weights_weight_the_counts(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        w = np.array([1, 1, 5, 5])
        tree = DecisionTreeClassifier().fit(X, y, sample_weight=w)
        # Weighted class counts replace the retired replicate-rows hack:
        # same mass as 12 replicated samples, but only 4 rows are grown.
        assert tree.tree_.value[0].tolist() == [2.0, 10.0]
        assert tree.tree_.n_node_samples[0] == 4

    def test_fractional_weights_match_replicated_integers(self):
        # The deprecation shim contract: fractional weights w find the
        # same split the old path found for the replicated integer
        # weights 2w (gains are scale-invariant in the total mass).
        rng = np.random.default_rng(3)
        X = rng.normal(size=(80, 4))
        y = (X[:, 1] + 0.3 * rng.normal(size=80) > 0).astype(int)
        w = np.array([0.5, 1.0, 1.5, 2.0] * 20)
        repeat = np.round(2 * w).astype(int)
        native = DecisionTreeClassifier(max_depth=1).fit(X, y, sample_weight=w)
        replicated = DecisionTreeClassifier(max_depth=1).fit(
            np.repeat(X, repeat, axis=0), np.repeat(y, repeat)
        )
        assert native.tree_.feature[0] == replicated.tree_.feature[0]
        assert native.tree_.threshold[0] == replicated.tree_.threshold[0]
        np.testing.assert_allclose(
            np.asarray(native.tree_.value) * 2.0, replicated.tree_.value
        )

    def test_integer_weights_match_replication_structurally(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(60, 3))
        y = (X[:, 0] > 0).astype(int)
        w = np.array([1, 2, 3] * 20)
        native = DecisionTreeClassifier(max_depth=3).fit(X, y, sample_weight=w)
        replicated = DecisionTreeClassifier(max_depth=3).fit(
            np.repeat(X, w, axis=0), np.repeat(y, w)
        )
        np.testing.assert_array_equal(
            native.predict(X), replicated.predict(X)
        )

    def test_zero_weight_samples_excluded(self):
        X = np.array([[0.0], [1.0], [2.0], [50.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(
            X, y, sample_weight=[1.0, 1.0, 1.0, 0.0]
        )
        assert tree.tree_.n_node_samples[0] == 3
        # The zero-weight outlier cannot have shaped any threshold.
        assert np.asarray(tree.tree_.threshold).max() < 50.0

    def test_negative_weights_rejected(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, y, sample_weight=[1.0, -0.5])

    def test_all_zero_weights_rejected(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, y, sample_weight=[0.0, 0.0])


class TestFeatureImportances:
    def test_informative_feature_dominates(self):
        rng = np.random.default_rng(10)
        n = 300
        informative = np.concatenate([rng.normal(-2, 1, n), rng.normal(2, 1, n)])
        noise = rng.normal(size=2 * n)
        X = np.column_stack([noise, informative])
        y = np.array([0] * n + [1] * n)
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        imp = tree.feature_importances_
        assert imp[1] > imp[0]
        assert imp.sum() == pytest.approx(1.0)

    def test_non_negative(self, blobs):
        X, y = blobs
        imp = DecisionTreeClassifier(max_depth=5).fit(X, y).feature_importances_
        assert np.all(imp >= 0)


class TestTreeStructure:
    def test_leaf_count_plus_internal_equals_total(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        t = tree.tree_
        internal = int(np.sum(np.asarray(t.feature) >= 0))
        assert internal + t.n_leaves == t.node_count

    def test_binary_tree_invariant(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        t = tree.tree_
        # every internal node has exactly two children
        internal = np.asarray(t.feature) >= 0
        assert np.all(np.asarray(t.children_left)[internal] >= 0)
        assert np.all(np.asarray(t.children_right)[internal] >= 0)

    def test_children_sample_counts_sum(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        t = tree.tree_
        for i in range(t.node_count):
            if t.feature[i] >= 0:
                assert (
                    t.n_node_samples[t.children_left[i]]
                    + t.n_node_samples[t.children_right[i]]
                    == t.n_node_samples[i]
                )
