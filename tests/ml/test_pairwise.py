"""Tests for pairwise distances and kernels."""

import numpy as np
import pytest

from repro.ml.metrics import (
    euclidean_distances,
    linear_kernel,
    manhattan_distances,
    polynomial_kernel,
    rbf_kernel,
    squared_euclidean_distances,
)


class TestEuclidean:
    def test_hand_computed(self):
        X = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = euclidean_distances(X)
        assert d[0, 1] == pytest.approx(5.0)
        assert d[0, 0] == pytest.approx(0.0)

    def test_symmetry(self):
        X = np.random.default_rng(0).normal(size=(10, 4))
        d = euclidean_distances(X)
        np.testing.assert_allclose(d, d.T, atol=1e-12)

    def test_non_negative_despite_cancellation(self):
        # Nearly identical large-magnitude rows stress the expansion.
        X = np.full((2, 3), 1e8)
        X[1, 0] += 1e-4
        d2 = squared_euclidean_distances(X)
        assert np.all(d2 >= 0)

    def test_rectangular(self):
        X = np.zeros((3, 2))
        Y = np.ones((5, 2))
        d = euclidean_distances(X, Y)
        assert d.shape == (3, 5)
        np.testing.assert_allclose(d, np.sqrt(2.0))

    def test_feature_mismatch_raises(self):
        with pytest.raises(ValueError, match="feature"):
            euclidean_distances(np.zeros((2, 3)), np.zeros((2, 4)))


class TestManhattan:
    def test_hand_computed(self):
        X = np.array([[0.0, 0.0], [1.0, 2.0]])
        d = manhattan_distances(X)
        assert d[0, 1] == pytest.approx(3.0)

    def test_dominates_euclidean(self):
        X = np.random.default_rng(1).normal(size=(8, 5))
        assert np.all(manhattan_distances(X) >= euclidean_distances(X) - 1e-12)


class TestKernels:
    def test_linear_kernel_is_gram(self):
        X = np.random.default_rng(2).normal(size=(6, 3))
        np.testing.assert_allclose(linear_kernel(X), X @ X.T)

    def test_rbf_diagonal_is_one(self):
        X = np.random.default_rng(3).normal(size=(7, 4))
        K = rbf_kernel(X, gamma=0.5)
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_rbf_bounded(self):
        X = np.random.default_rng(4).normal(size=(9, 4))
        K = rbf_kernel(X, gamma=1.0)
        assert np.all(K > 0) and np.all(K <= 1.0 + 1e-12)

    def test_rbf_decays_with_distance(self):
        X = np.array([[0.0], [1.0], [10.0]])
        K = rbf_kernel(X, gamma=1.0)
        assert K[0, 1] > K[0, 2]

    def test_rbf_invalid_gamma(self):
        with pytest.raises(ValueError):
            rbf_kernel(np.zeros((2, 2)), gamma=0.0)

    def test_polynomial_hand_computed(self):
        X = np.array([[1.0, 1.0]])
        K = polynomial_kernel(X, degree=2, gamma=1.0, coef0=1.0)
        assert K[0, 0] == pytest.approx(9.0)  # (2 + 1)^2
