"""Tests for the command-line experiment runner."""

import pytest

from repro.experiments.__main__ import RUNNERS, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiments == ["all"]
        assert args.dvfs_scale == 0.5

    def test_scales_parsed(self):
        args = build_parser().parse_args(
            ["table1", "--dvfs-scale", "0.1", "--hpc-scale", "0.02"]
        )
        assert args.experiments == ["table1"]
        assert args.dvfs_scale == pytest.approx(0.1)


class TestMain:
    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in RUNNERS:
            assert name in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["fig99"]) == 2
        assert "Unknown experiments" in capsys.readouterr().err

    def test_runs_table1(self, capsys):
        code = main(
            ["table1", "--dvfs-scale", "0.05", "--hpc-scale", "0.01",
             "--n-estimators", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out


class TestRunnerRegistry:
    def test_every_artifact_has_runner(self):
        # One runner per table/figure of the evaluation + claims + ablations.
        expected = {
            "table1", "fig4", "fig5", "fig7a", "fig7b", "fig8", "fig9a",
            "fig9b", "claims",
        }
        assert expected <= set(RUNNERS)
