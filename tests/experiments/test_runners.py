"""Smoke-scale runs of every experiment runner (shapes, not magnitudes).

The paper-shape assertions at meaningful scale live in
tests/integration/; here we verify each runner produces well-formed
output quickly on the shared small context.
"""

import numpy as np
import pytest

from repro.experiments import (
    run_decomposition_ablation,
    run_diversity_ablation,
    run_fleet,
    run_fig4,
    run_fig5,
    run_fig7a,
    run_fig7b,
    run_fig8,
    run_fig9a,
    run_fig9b,
    run_platt_ablation,
    run_table1,
)


class TestTable1:
    def test_rows_and_text(self, small_context):
        result = run_table1(context=small_context)
        assert len(result.rows) == 6
        assert "Table I" in result.as_text()

    def test_scaled_counts_not_paper(self, small_context):
        result = run_table1(context=small_context)
        assert not result.matches_paper()  # context is at smoke scale


class TestFig4:
    def test_all_kind_split_pairs(self, small_context):
        result = run_fig4(context=small_context)
        kinds = {k for k, _ in result.stats}
        assert kinds == {"rf", "lr", "svm"}
        assert all(s in ("known", "unknown") for _, s in result.stats)

    def test_stats_are_valid_boxplots(self, small_context):
        result = run_fig4(context=small_context)
        for stats in result.stats.values():
            assert stats["q1"] <= stats["median"] <= stats["q3"]
            assert 0 <= stats["min"] <= stats["max"] <= 1.0 + 1e-9

    def test_rf_separation_positive(self, small_context):
        result = run_fig4(context=small_context)
        assert result.separation("rf") > 0

    def test_text_renders(self, small_context):
        assert "Fig. 4" in run_fig4(context=small_context).as_text()


class TestFig5:
    def test_hpc_kinds_no_svm(self, small_context):
        result = run_fig5(context=small_context)
        kinds = {k for k, _ in result.stats}
        assert kinds == {"rf", "lr"}

    def test_text_renders(self, small_context):
        assert "SVM omitted" in run_fig5(context=small_context).as_text()


class TestFig7:
    def test_fig7a_curves_monotone(self, small_context):
        result = run_fig7a(context=small_context)
        for curve in result.curves.values():
            assert np.all(np.diff(curve) <= 1e-9)
            assert np.all((curve >= 0) & (curve <= 100))

    def test_fig7a_operating_point(self, small_context):
        result = run_fig7a(context=small_context)
        known, unknown = result.operating_point("rf", 0.40)
        assert 0 <= known <= 100 and 0 <= unknown <= 100

    def test_fig7b_series_aligned(self, small_context):
        result = run_fig7b(context=small_context)
        assert len(result.dvfs_rows) == len(result.hpc_rows) == len(result.thresholds)

    def test_fig7b_f1_bounds(self, small_context):
        result = run_fig7b(context=small_context)
        for row in result.dvfs_rows + result.hpc_rows:
            if row["f1"] is not None:
                assert 0.0 <= row["f1"] <= 1.0

    def test_text_renders(self, small_context):
        assert "threshold" in run_fig7a(context=small_context).as_text()
        assert "RF-DVFS" in run_fig7b(context=small_context).as_text()


class TestFig8:
    def test_embeddings_and_metrics(self, small_context):
        result = run_fig8(context=small_context, n_embed=200, tsne_iterations=60)
        for domain in ("dvfs", "hpc"):
            Y, labels, groups = result.embeddings[domain]
            assert Y.shape[1] == 2
            assert len(labels) == len(groups) == len(Y)
            assert set(np.unique(groups)) <= {"benign", "malware", "unknown"}
            metrics = result.metrics[domain]
            assert 0 <= metrics["train_neighborhood_purity"] <= 1

    def test_dvfs_purer_than_hpc(self, small_context):
        result = run_fig8(context=small_context, n_embed=200, tsne_iterations=60)
        assert (
            result.metrics["dvfs"]["train_neighborhood_purity"]
            > result.metrics["hpc"]["train_neighborhood_purity"]
        )


class TestFig9:
    def test_fig9a_sizes_filtered_to_ensemble(self, small_context):
        result = run_fig9a(context=small_context)
        max_m = small_context.config.n_estimators
        assert all(m <= max_m for m in result.sizes)
        assert len(result.known) == len(result.sizes)

    def test_fig9a_single_member_zero_entropy(self, small_context):
        result = run_fig9a(context=small_context)
        assert result.known[0] == pytest.approx(0.0)

    def test_fig9a_stabilization_reported(self, small_context):
        result = run_fig9a(context=small_context)
        assert result.stabilization_size() in result.sizes

    def test_fig9b_curves_bounded(self, small_context):
        result = run_fig9b(context=small_context)
        for curve in result.curves.values():
            assert np.all((curve >= 0) & (curve <= 100))

    def test_fig9b_tracking_error_small_for_hpc(self, small_context):
        result = run_fig9b(context=small_context)
        # HPC known/unknown rejection curves track closely (< 25 %pts
        # even at smoke scale).
        assert result.known_unknown_tracking_error("rf") < 25.0


class TestAblations:
    def test_platt_ablation_fields(self, small_context):
        result = run_platt_ablation(context=small_context)
        assert 0 <= result.platt_auc <= 1
        assert 0 <= result.entropy_auc <= 1
        assert "A1" in result.as_text()

    def test_entropy_beats_platt(self, small_context):
        result = run_platt_ablation(context=small_context)
        assert result.entropy_wins()

    def test_decomposition_rows_complete(self, small_context):
        result = run_decomposition_ablation(context=small_context)
        assert len(result.rows_) == 4
        for _, _, total, aleatoric, epistemic in result.rows_:
            assert total == pytest.approx(aleatoric + epistemic, abs=1e-6)

    def test_dvfs_unknown_epistemic_dominant(self, small_context):
        result = run_decomposition_ablation(context=small_context)
        assert result.mean_epistemic("dvfs", "unknown") > result.mean_epistemic(
            "dvfs", "known"
        )

    def test_hpc_aleatoric_dominant(self, small_context):
        result = run_decomposition_ablation(context=small_context)
        assert result.mean_aleatoric("hpc", "known") > result.mean_epistemic(
            "hpc", "known"
        )

    def test_diversity_ablation_rows(self, small_context):
        result = run_diversity_ablation(
            context=small_context, n_estimators=8, max_samples_grid=(0.5, 1.0)
        )
        assert len(result.rows_) == 6  # 3 bases x 2 sizes
        for _, _, diversity, auc in result.rows_:
            assert 0 <= diversity <= 1
            assert 0 <= auc <= 1

    def test_accessors_raise_on_unknown_config(self, small_context):
        result = run_diversity_ablation(
            context=small_context, n_estimators=8, max_samples_grid=(1.0,)
        )
        with pytest.raises(KeyError):
            result.diversity("tree", 0.123)
        with pytest.raises(KeyError):
            result.auc("boosted", 1.0)


class TestGovernorAblation:
    def test_rows_complete(self, small_context):
        from repro.experiments import run_governor_ablation

        result = run_governor_ablation(context=small_context, n_estimators=15)
        governors = {row[0] for row in result.rows_}
        assert governors == {"ondemand", "conservative", "performance"}

    def test_performance_governor_destroys_signal(self, small_context):
        from repro.experiments import run_governor_ablation

        result = run_governor_ablation(context=small_context, n_estimators=15)
        # Pinning the max frequency removes the workload modulation: both
        # classification quality and unknown detection collapse.
        assert result.f1("performance") < result.f1("ondemand") - 0.1
        assert result.unknown_auc("performance") < result.unknown_auc("ondemand") - 0.2

    def test_accessors_raise(self, small_context):
        from repro.experiments import run_governor_ablation
        import pytest as _pytest

        result = run_governor_ablation(context=small_context, n_estimators=15)
        with _pytest.raises(KeyError):
            result.f1("schedutil")


class TestEmExtension:
    def test_runs_and_reports(self, small_context):
        from repro.experiments import run_em_extension

        result = run_em_extension(context=small_context)
        assert "Extension E1" in result.as_text()
        assert 0 <= result.unknown_auc <= 1
        assert result.f1_known > 0.8

    def test_framework_transfers_to_em(self, small_context):
        from repro.experiments import run_em_extension

        result = run_em_extension(context=small_context)
        # Unknown workloads carry more entropy than known ones on the EM
        # channel too — the estimator is sensor-agnostic.
        assert result.separation() > 0.1
        assert result.unknown_auc > 0.6


class TestEvasionAblation:
    def test_rows_and_accessors(self, small_context):
        from repro.experiments import run_evasion_ablation

        result = run_evasion_ablation(
            context=small_context, stealth_levels=(0.0, 0.5), n_windows=15
        )
        assert len(result.rows_) == 2
        assert 0 <= result.detected(0.0) <= 1
        with pytest.raises(KeyError):
            result.detected(0.123)

    def test_plain_malware_fully_handled(self, small_context):
        from repro.experiments import run_evasion_ablation

        result = run_evasion_ablation(
            context=small_context, stealth_levels=(0.0,), n_windows=20
        )
        # Unmodified ransomware: detected or flagged, near-always.
        assert result.caught(0.0) > 0.9

    def test_stealth_decays_raw_detection(self, small_context):
        from repro.experiments import run_evasion_ablation

        result = run_evasion_ablation(
            context=small_context, stealth_levels=(0.0, 0.7), n_windows=25
        )
        assert result.detected(0.7) < result.detected(0.0)

    def test_uncertainty_recovers_part_of_the_loss(self, small_context):
        from repro.experiments import run_evasion_ablation

        result = run_evasion_ablation(
            context=small_context, stealth_levels=(0.5,), n_windows=25
        )
        assert result.caught(0.5) > result.detected(0.5)


class TestCounterBudgetAblation:
    def test_rows_and_accessor(self, small_context):
        from repro.experiments import run_counter_budget_ablation

        result = run_counter_budget_ablation(
            context=small_context, budgets=(4, 8), n_estimators=15
        )
        assert len(result.rows_) == 2
        assert 0 <= result.f1(4) <= 1
        with pytest.raises(KeyError):
            result.f1(99)

    def test_budget_clamped_to_feature_count(self, small_context):
        from repro.experiments import run_counter_budget_ablation

        result = run_counter_budget_ablation(
            context=small_context, budgets=(1000,), n_estimators=10
        )
        ds = small_context.dataset("hpc")
        assert result.rows_[0][0] == ds.n_features

    def test_small_budget_remains_usable(self, small_context):
        from repro.experiments import run_counter_budget_ablation

        result = run_counter_budget_ablation(
            context=small_context, budgets=(4,), n_estimators=15
        )
        # Even 4 well-chosen features keep the detector above chance.
        assert result.f1(4) > 0.55

    def test_features_ranked(self, small_context):
        from repro.experiments import run_counter_budget_ablation

        result = run_counter_budget_ablation(
            context=small_context, budgets=(4,), n_estimators=10
        )
        ds = small_context.dataset("hpc")
        assert len(result.selected_features) == ds.n_features


class TestFleet:
    def test_smoke_run(self, small_context):
        result = run_fleet(
            context=small_context,
            n_devices=8,
            windows_per_device=6,
            batch_size=16,
        )
        assert result.n_devices == 8
        assert result.n_windows == 48
        assert result.verdicts_identical
        assert result.sequential_wps > 0 and result.batched_wps > 0
        text = result.as_text()
        assert "Fleet monitoring" in text and "speedup" in text
