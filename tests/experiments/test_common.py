"""Tests for the shared experiment infrastructure."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentContext,
    boxplot_stats,
    format_table,
    make_ensemble,
)
from repro.ml import BaggingClassifier, RandomForestClassifier


class TestMakeEnsemble:
    def test_kinds(self):
        assert isinstance(make_ensemble("rf"), RandomForestClassifier)
        assert isinstance(make_ensemble("lr"), BaggingClassifier)
        assert isinstance(make_ensemble("svm"), BaggingClassifier)

    def test_n_estimators_forwarded(self):
        assert make_ensemble("rf", n_estimators=7).n_estimators == 7
        assert make_ensemble("lr", n_estimators=7).n_estimators == 7

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_ensemble("xgboost")


class TestExperimentContext:
    def test_datasets_cached(self, small_context):
        assert small_context.dataset("dvfs") is small_context.dataset("dvfs")

    def test_unknown_domain(self, small_context):
        with pytest.raises(ValueError):
            small_context.dataset("emf")

    def test_scaled_splits_standardised(self, small_context):
        X_train, X_test, X_unknown = small_context.scaled_splits("dvfs")
        np.testing.assert_allclose(X_train.mean(axis=0), 0.0, atol=1e-9)
        assert X_test.shape[1] == X_train.shape[1] == X_unknown.shape[1]

    def test_fitted_cached(self, small_context):
        a = small_context.fitted("dvfs", "rf")
        b = small_context.fitted("dvfs", "rf")
        assert a is b

    def test_fitted_has_entropies(self, small_context):
        fitted = small_context.fitted("dvfs", "rf")
        ds = small_context.dataset("dvfs")
        assert len(fitted.entropy_test) == ds.test.n_samples
        assert len(fitted.entropy_unknown) == ds.unknown.n_samples

    def test_config_smaller(self):
        config = ExperimentConfig().smaller(0.1)
        assert config.dvfs_scale == pytest.approx(0.1)
        assert config.n_estimators >= 10


class TestBoxplotStats:
    def test_five_number_summary(self):
        values = np.arange(1.0, 101.0)
        stats = boxplot_stats(values)
        assert stats["median"] == pytest.approx(50.5)
        assert stats["q1"] == pytest.approx(25.75)
        assert stats["q3"] == pytest.approx(75.25)
        assert stats["min"] == 1.0 and stats["max"] == 100.0

    def test_whiskers_clip_outliers(self):
        values = np.concatenate([np.random.default_rng(0).normal(size=200), [50.0]])
        stats = boxplot_stats(values)
        assert stats["whisker_high"] < 50.0
        assert stats["max"] == 50.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            boxplot_stats(np.array([]))


class TestFormatTable:
    def test_renders_rows(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", None]])
        assert "a" in text and "2.500" in text and "-" in text

    def test_alignment_consistent(self):
        text = format_table(["col"], [["value"]])
        lines = text.splitlines()
        assert len(lines) == 3
