"""Benchmark F4 — Fig. 4: DVFS entropy boxplots (RF / LR / SVM).

Shape assertions: unknown entropies exceed known for every ensemble,
the RF known median sits near zero, and the RF separation beats SVM's.
"""

from repro.experiments import run_fig4


def test_bench_fig4(benchmark, bench_context_warm):
    """Regenerate the Fig. 4 boxplot statistics."""
    result = benchmark.pedantic(
        lambda: run_fig4(context=bench_context_warm), rounds=1, iterations=1
    )
    print()
    print(result.as_text())

    for kind in ("rf", "lr", "svm"):
        assert result.separation(kind) >= 0.0, kind
    assert result.stats[("rf", "known")]["median"] < 0.15
    assert result.stats[("rf", "unknown")]["median"] > 0.4
    assert result.separation("rf") > result.separation("svm")
