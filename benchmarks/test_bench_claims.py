"""Benchmark C1-C4 — the paper's headline claims, plus the SVM
non-convergence demonstration from Section V.B."""

from repro.experiments import demonstrate_hpc_svm_failure, run_claims


def test_bench_claims(benchmark, bench_context_warm):
    """Evaluate all claim checks against the reproduced pipeline."""
    result = benchmark.pedantic(
        lambda: run_claims(context=bench_context_warm), rounds=1, iterations=1
    )
    print()
    print(result.as_text())
    assert result.all_passed()


def test_bench_hpc_svm_convergence_failure(benchmark, bench_context_warm):
    """Kernel-SVM training on a bootstrapped HPC replicate diverges."""
    failed = benchmark.pedantic(
        lambda: demonstrate_hpc_svm_failure(
            context=bench_context_warm, n_samples=1200, max_iter=4
        ),
        rounds=1,
        iterations=1,
    )
    assert failed
