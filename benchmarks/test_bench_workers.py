"""Benchmark: the multi-process worker backend vs. in-process sharding.

Acceptance criteria of the process-per-shard backend:

* draining 96 devices' traffic through a K=4
  ``WorkerShardedFleetMonitor`` is at least **1.5x** the K=4 in-process
  ``ShardedFleetMonitor`` drain over the same submissions — *on a
  multi-core host*: the speedup comes from true parallelism, so the
  throughput assertion only arms when ``os.cpu_count() >= 4`` (the
  equivalence assertions below are unconditional);
* verdicts AND merged report rows are **bitwise identical** to the
  single-monitor reference, process boundary or not;
* killing a worker mid-stream (SIGKILL) and letting the supervisor
  restore it from checkpoint yields a verdict stream identical to an
  uninterrupted run.

Measured numbers are printed and written to ``BENCH_shard_mp.json``
(uploaded as a CI artifact by the ``bench-shard-mp`` job).
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, ExperimentContext
from repro.fleet import (
    BackpressurePolicy,
    FleetMonitor,
    FleetWindowSampler,
    ShardedFleetMonitor,
    WorkerShardedFleetMonitor,
)
from repro.fleet.engine import batch_verdict_key
from repro.fleet.report import device_report_key
from repro.hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN
from repro.ml import RandomForestClassifier
from repro.sim.workloads import FleetPopulation
from repro.uncertainty import TrustedHMD

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_shard_mp.json"
_results: dict = {}

N_DEVICES = 96
N_SHARDS = 4
WINDOWS_PER_DEVICE = 40
BATCH_SIZE = 256
REPEATS = 3
MULTI_CORE = (os.cpu_count() or 1) >= 4


@pytest.fixture(scope="module")
def shard_setup():
    config = ExperimentConfig(dvfs_scale=0.25, hpc_scale=0.05, n_estimators=60)
    context = ExperimentContext(config)
    dataset = context.dataset("dvfs")
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=60, random_state=7),
        threshold=0.40,
    ).fit(dataset.train.X, dataset.train.y)
    population = FleetPopulation(
        DVFS_KNOWN_BENIGN,
        DVFS_KNOWN_MALWARE,
        DVFS_UNKNOWN,
        malware_fraction=0.08,
        zero_day_fraction=0.05,
        random_state=7,
    )
    devices = population.sample(N_DEVICES)
    sampler = FleetWindowSampler(dataset, devices, random_state=7)
    arrivals = list(sampler.rounds(WINDOWS_PER_DEVICE))
    return hmd, devices, arrivals


def _drive(monitor, devices, arrivals):
    monitor.register_fleet(devices)
    for device_id, window in arrivals:
        monitor.submit(device_id, window)
    t0 = time.perf_counter()
    batches = monitor.drain()
    return batches, time.perf_counter() - t0


def test_bench_worker_drain(shard_setup):
    """Gate: K-process drain >= 1.5x in-process (multi-core hosts),
    verdicts and reports bitwise identical everywhere."""
    hmd, devices, arrivals = shard_setup
    policy = BackpressurePolicy(max_pending=len(arrivals) + 1)

    single = FleetMonitor(hmd, batch_size=BATCH_SIZE, policy=policy)
    single_batches, _ = _drive(single, devices, arrivals)
    single_report = single.report()

    inproc_elapsed, worker_elapsed = np.inf, np.inf
    worker_batches = None
    worker_report = None
    # Interleave the repeats so host noise hits both paths alike and
    # take the best of each (same discipline as the other benches).
    # Workers are reused across repeats — process startup is deployment
    # cost, not per-drain cost.
    with WorkerShardedFleetMonitor(
        hmd,
        n_shards=N_SHARDS,
        batch_size=BATCH_SIZE,
        policy=policy,
        mp_context="fork",
    ) as worker_fleet:
        for repeat in range(REPEATS):
            inproc = ShardedFleetMonitor(
                hmd, n_shards=N_SHARDS, batch_size=BATCH_SIZE, policy=policy
            )
            _, elapsed = _drive(inproc, devices, arrivals)
            inproc_elapsed = min(inproc_elapsed, elapsed)

            batches, elapsed = _drive(worker_fleet, devices, arrivals)
            if elapsed < worker_elapsed:
                worker_elapsed = elapsed
            if repeat == 0:
                # Equivalence is judged on the first drain: later
                # repeats continue the per-device sequence counters, so
                # their (device, seq) keys can't line up with the
                # once-driven single-monitor reference.
                worker_batches = batches
                worker_report = worker_fleet.report()

    n = len(arrivals)
    speedup = inproc_elapsed / worker_elapsed
    verdicts_identical = batch_verdict_key(worker_batches) == batch_verdict_key(
        single_batches
    )
    reports_identical = device_report_key(worker_report) == device_report_key(
        single_report
    )
    print(
        f"\nworker bench: {N_DEVICES} devices x {WINDOWS_PER_DEVICE} windows, "
        f"K={N_SHARDS}, batch={BATCH_SIZE}, cpus={os.cpu_count()}\n"
        f"  in-process : {inproc_elapsed * 1e3:8.1f} ms "
        f"({n / inproc_elapsed:8.0f} windows/sec)\n"
        f"  K processes: {worker_elapsed * 1e3:8.1f} ms "
        f"({n / worker_elapsed:8.0f} windows/sec)\n"
        f"  speedup: {speedup:8.2f}x (gate {'armed' if MULTI_CORE else 'off: single-core host'})"
        f"   verdicts identical: {verdicts_identical}"
        f"   reports identical: {reports_identical}"
    )
    _results["worker_drain"] = {
        "n_devices": N_DEVICES,
        "n_windows": n,
        "n_shards": N_SHARDS,
        "batch_size": BATCH_SIZE,
        "cpu_count": os.cpu_count(),
        "inprocess_sec": inproc_elapsed,
        "worker_sec": worker_elapsed,
        "inprocess_wps": n / inproc_elapsed,
        "worker_wps": n / worker_elapsed,
        "speedup_vs_inprocess": speedup,
        "throughput_gate_armed": MULTI_CORE,
        "verdicts_identical": verdicts_identical,
        "reports_identical": reports_identical,
    }

    assert verdicts_identical, "worker verdicts drifted from the single path"
    assert reports_identical, "merged report drifted from the single path"
    if MULTI_CORE:
        assert speedup >= 1.5, f"multi-process drain only {speedup:.2f}x"


def test_bench_kill_and_resume(shard_setup):
    """Gate: SIGKILL a worker mid-stream; the supervisor restores it
    from checkpoint and the merged verdict stream is identical to an
    uninterrupted run."""
    hmd, devices, arrivals = shard_setup
    policy = BackpressurePolicy(max_pending=len(arrivals) + 1)

    reference = ShardedFleetMonitor(
        hmd, n_shards=N_SHARDS, batch_size=BATCH_SIZE, policy=policy
    )
    reference_batches, _ = _drive(reference, devices, arrivals)

    with WorkerShardedFleetMonitor(
        hmd,
        n_shards=N_SHARDS,
        batch_size=BATCH_SIZE,
        policy=policy,
        mp_context="fork",
        checkpoint_every=2,
    ) as fleet:
        fleet.register_fleet(devices)
        for device_id, window in arrivals:
            fleet.submit(device_id, window)
        results = []
        killed = False
        t0 = time.perf_counter()
        while True:
            result = fleet.process_batch()
            if result is None:
                break
            results.append(result)
            if not killed:
                os.kill(fleet.handles[0].proc.pid, signal.SIGKILL)
                killed = True
        elapsed = time.perf_counter() - t0
        report = fleet.report()

    identical = batch_verdict_key(results) == batch_verdict_key(
        reference_batches
    )
    reports_identical = device_report_key(report) == device_report_key(
        reference.report()
    )
    print(
        f"\nkill-and-resume: worker 0 SIGKILLed after round 1, "
        f"drained {len(results)} rounds in {elapsed * 1e3:.1f} ms, "
        f"verdicts identical: {identical}, reports identical: "
        f"{reports_identical}"
    )
    _results["kill_and_resume"] = {
        "rounds": len(results),
        "drain_sec": elapsed,
        "verdicts_identical": identical,
        "reports_identical": reports_identical,
    }

    assert killed
    assert identical, "kill-and-resume verdicts drifted"
    assert reports_identical, "kill-and-resume report drifted"


def teardown_module(module):
    """Persist whatever was measured, even on partial runs."""
    if _results:
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
        print(f"\nwrote {RESULTS_PATH}")
