"""Shared fixtures for the benchmark harness.

Benchmarks regenerate every table/figure at "bench scale" — large
enough for the paper's qualitative shapes to be stable, small enough to
run in minutes.  The printed output of each benchmark is the series the
corresponding paper artifact plots; EXPERIMENTS.md records a full-scale
run.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, ExperimentContext


@pytest.fixture(scope="session")
def bench_context():
    """Experiment context shared by all figure benchmarks."""
    config = ExperimentConfig(dvfs_scale=0.5, hpc_scale=0.08, n_estimators=60)
    return ExperimentContext(config)


@pytest.fixture(scope="session")
def bench_context_warm(bench_context):
    """Context with datasets and the RF ensembles pre-fitted, so
    per-figure benchmarks measure the figure computation itself."""
    for domain in ("dvfs", "hpc"):
        bench_context.dataset(domain)
        bench_context.fitted(domain, "rf")
    return bench_context
