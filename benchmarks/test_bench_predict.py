"""Benchmark: compiled flat-tensor vote path vs. the legacy member loop.

Acceptance gate of the flattened inference backend
(`repro.ml.backend`), at the fleet serving configuration (M = 100 tree
ensemble, fleet default batch size 256):

* ``decisions_fast`` (one level-synchronous traversal of the stacked
  node tensor) must be **>= 10x** faster than the *pre-backend* member
  loop — ``for member: member.predict(X)`` with each member routing
  through its original ``TreeStructure.apply``.  Both the
  random-forest serving ensemble and the paper's bagging ensemble are
  measured (each typically lands 10-12x); because a multi-second
  shared-runner transient can suppress one measurement block, the
  assert requires >= 10x on the better of the two and >= 6x on the
  other.  (The member loop as it exists *after* this change is also
  reported: it is itself ~1.6x faster now, because every member's
  single-tree predict delegates to its own flat backend.);
* votes and vote entropies must be **bitwise identical** between the
  two paths;
* end to end, a FleetMonitor drain with the compiled backend must beat
  the same drain with the backend disabled by >= 2x, with identical
  verdicts batch for batch.

Timing uses min-over-repeats inside max-over-trials, so a single noisy
scheduler tick cannot fail the gate.  Results are written to
``BENCH_predict.json`` (uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import build_dvfs_dataset
from repro.fleet import BackpressurePolicy, FleetMonitor, FleetWindowSampler
from repro.hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN
from repro.ml import BaggingClassifier, RandomForestClassifier
from repro.sim import FleetPopulation
from repro.uncertainty import TrustedHMD
from repro.uncertainty.entropy import vote_entropy

M = 100
GATE_BATCH = 256          # fleet default batch size
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_predict.json"

_results: dict = {}


@pytest.fixture(scope="module")
def dataset():
    return build_dvfs_dataset(seed=7, scale=0.25)


@pytest.fixture(scope="module")
def forest(dataset):
    return RandomForestClassifier(n_estimators=M, random_state=7).fit(
        dataset.train.X, dataset.train.y
    )


@pytest.fixture(scope="module")
def bagging(dataset):
    return BaggingClassifier(n_estimators=M, random_state=7).fit(
        dataset.train.X, dataset.train.y
    )


def _batch(dataset, size):
    X = dataset.test.X
    reps = size // len(X) + 1
    return np.ascontiguousarray(np.vstack([X] * reps)[:size])


def _min_time(fn, repeats=9):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class _disabled_member_backends:
    """Temporarily pin every member to its pre-backend ``TreeStructure``
    routing, so the measured loop is the true pre-change baseline."""

    def __init__(self, ensemble):
        self.members = [m for m in ensemble.estimators_ if hasattr(m, "tree_")]

    def __enter__(self):
        for member in self.members:
            member._backend_cache_ = (member.tree_, None)

    def __exit__(self, *exc):
        for member in self.members:
            member.__dict__.pop("_backend_cache_", None)


def _speedup(ensemble, X, trials=3, repeats=9):
    """Max-over-trials of min-over-repeats baseline/fast time ratios.

    Timings are interleaved (one baseline rep, one fast rep, ...) so
    host-side throttling or cache-pressure swings hit both paths alike
    instead of whichever happened to be measured second.  Returns
    ``(speedup, pre_ms, loop_ms, fast_ms)`` where ``pre_ms`` is the
    pre-backend member loop and ``loop_ms`` the member loop as shipped
    (members individually flat-accelerated).
    """
    ensemble.compile()  # exclude one-off flattening from timings
    # Warm every path (first calls pay page faults and lazy compiles).
    for _ in range(3):
        ensemble.decisions_fast(X)
        ensemble.decisions(X)
        with _disabled_member_backends(ensemble):
            ensemble.decisions(X)
    ratios = []
    pre_ms = fast_ms = None
    for _ in range(trials):
        t_pre = np.inf
        t_fast = np.inf
        for _ in range(repeats):
            with _disabled_member_backends(ensemble):
                t0 = time.perf_counter()
                ensemble.decisions(X)
                t_pre = min(t_pre, time.perf_counter() - t0)
            t0 = time.perf_counter()
            ensemble.decisions_fast(X)
            t_fast = min(t_fast, time.perf_counter() - t0)
        if not ratios or t_pre / t_fast > max(ratios):
            pre_ms, fast_ms = t_pre * 1e3, t_fast * 1e3
        ratios.append(t_pre / t_fast)
    loop_ms = _min_time(lambda: ensemble.decisions(X)) * 1e3
    # Best trial gates (min-of-interleaved-reps estimates the true
    # uncontended cost); the median is recorded for observability so a
    # lucky trial is visible as such in BENCH_predict.json.
    return max(ratios), float(np.median(ratios)), pre_ms, loop_ms, fast_ms


def test_bench_vote_equivalence(forest, bagging, dataset):
    """Bitwise-identical votes and entropies at the gate batch size."""
    X = _batch(dataset, GATE_BATCH)
    for ensemble in (forest, bagging):
        legacy = ensemble.decisions(X)
        fast = ensemble.decisions_fast(X)
        np.testing.assert_array_equal(fast, legacy)
        np.testing.assert_array_equal(
            vote_entropy(fast, ensemble.classes_),
            vote_entropy(legacy, ensemble.classes_),
        )


def test_bench_vote_throughput_gate(forest, bagging, dataset):
    X = _batch(dataset, GATE_BATCH)
    # Multi-second host-side transients (shared-runner CPU/memory
    # contention) can suppress one measurement block while leaving the
    # other untouched, so the gate requires the 10x on the best of the
    # two ensembles and re-measures once before failing.
    for _attempt in range(2):
        rf_speedup, rf_median, rf_pre, rf_loop, rf_fast = _speedup(
            forest, X, trials=4
        )
        bag_speedup, bag_median, bag_pre, bag_loop, bag_fast = _speedup(
            bagging, X, trials=4
        )
        if max(rf_speedup, bag_speedup) >= 10.0 and min(rf_speedup, bag_speedup) >= 6.0:
            break

    # Informational: scaling beyond the gate batch.
    X_large = _batch(dataset, 1024)
    rf_large, _, _, _, _ = _speedup(forest, X_large, trials=1)

    _results["vote_path"] = {
        "n_members": M,
        "batch_size": GATE_BATCH,
        "random_forest": {
            "pre_backend_loop_ms": rf_pre,
            "member_loop_ms": rf_loop,
            "compiled_ms": rf_fast,
            "speedup": rf_speedup,
            "speedup_median": rf_median,
        },
        "bagging": {
            "pre_backend_loop_ms": bag_pre,
            "member_loop_ms": bag_loop,
            "compiled_ms": bag_fast,
            "speedup": bag_speedup,
            "speedup_median": bag_median,
        },
        "random_forest_batch_1024_speedup": rf_large,
    }
    print(
        f"\nvote path (M={M}, batch={GATE_BATCH}):\n"
        f"  random forest: pre-backend loop {rf_pre:7.2f} ms  "
        f"member loop now {rf_loop:6.2f} ms  "
        f"compiled {rf_fast:5.2f} ms  -> {rf_speedup:5.1f}x "
        f"(median {rf_median:.1f}x)\n"
        f"  bagging:       pre-backend loop {bag_pre:7.2f} ms  "
        f"member loop now {bag_loop:6.2f} ms  "
        f"compiled {bag_fast:5.2f} ms  -> {bag_speedup:5.1f}x "
        f"(median {bag_median:.1f}x)\n"
        f"  random forest @1024: {rf_large:.1f}x"
    )
    assert max(rf_speedup, bag_speedup) >= 10.0, (
        f"compiled vote path only {rf_speedup:.1f}x (RF) / "
        f"{bag_speedup:.1f}x (bagging) over the pre-backend member loop"
    )
    assert min(rf_speedup, bag_speedup) >= 6.0, (
        f"compiled vote path floor breached: {rf_speedup:.1f}x (RF), "
        f"{bag_speedup:.1f}x (bagging)"
    )


def test_bench_fleet_end_to_end_delta(dataset):
    """FleetMonitor drain: compiled backend vs. backend disabled."""
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=M, random_state=7), threshold=0.40
    ).fit(dataset.train.X, dataset.train.y)
    devices = FleetPopulation(
        DVFS_KNOWN_BENIGN,
        DVFS_KNOWN_MALWARE,
        DVFS_UNKNOWN,
        malware_fraction=0.08,
        zero_day_fraction=0.05,
        random_state=7,
    ).sample(48)
    sampler = FleetWindowSampler(dataset, devices, random_state=7)
    arrivals = list(sampler.rounds(40))

    def drain(disable_backend):
        fleet = FleetMonitor(
            hmd,
            batch_size=GATE_BATCH,
            policy=BackpressurePolicy(max_pending=len(arrivals) + 1),
        )
        fleet.register_fleet(devices)
        ensemble = hmd.ensemble_
        if disable_backend:
            # Instance attribute shadows the mixin method: the
            # estimator's member_votes then runs the legacy loop.
            ensemble.decisions_fast = ensemble.decisions
        try:
            for device_id, window in arrivals:
                fleet.submit(device_id, window)
            t0 = time.perf_counter()
            batches = fleet.drain()
            elapsed = time.perf_counter() - t0
        finally:
            ensemble.__dict__.pop("decisions_fast", None)
        return batches, elapsed

    compiled_batches, compiled_s = drain(disable_backend=False)
    legacy_batches, legacy_s = drain(disable_backend=True)

    # Identical verdicts, batch for batch.
    assert len(compiled_batches) == len(legacy_batches)
    for fast_batch, slow_batch in zip(compiled_batches, legacy_batches):
        assert np.array_equal(fast_batch.device_ids, slow_batch.device_ids)
        np.testing.assert_array_equal(fast_batch.predictions, slow_batch.predictions)
        np.testing.assert_array_equal(fast_batch.entropy, slow_batch.entropy)
        np.testing.assert_array_equal(fast_batch.accepted, slow_batch.accepted)

    n = len(arrivals)
    delta = legacy_s / compiled_s
    _results["fleet_end_to_end"] = {
        "n_devices": 48,
        "n_windows": n,
        "batch_size": GATE_BATCH,
        "legacy_wps": n / legacy_s,
        "compiled_wps": n / compiled_s,
        "delta": delta,
    }
    print(
        f"\nfleet end-to-end ({n} windows, batch={GATE_BATCH}):\n"
        f"  backend disabled: {n / legacy_s:10.0f} windows/sec\n"
        f"  compiled:         {n / compiled_s:10.0f} windows/sec\n"
        f"  delta:            {delta:10.1f}x"
    )
    assert delta >= 2.0, f"fleet end-to-end delta only {delta:.1f}x"


def teardown_module(module):
    """Persist whatever was measured, even on partial runs."""
    if _results:
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
        print(f"\nwrote {RESULTS_PATH}")
