"""Benchmark: the telemetry plane's overhead budget.

Acceptance criteria of the observability subsystem:

* draining 96 devices' traffic through a K=4
  ``WorkerShardedFleetMonitor`` with full telemetry on (metrics
  registries in parent and workers, production-rate 1/1024 tracer,
  shm trace sidecar) sustains at least **0.97x** the uninstrumented
  drain's throughput — on a multi-core host; the gate only arms when
  ``os.cpu_count() >= 4`` (equivalence assertions are unconditional);
* verdicts are **bitwise identical** with telemetry on and off —
  instrumentation observes the stream, it never touches it;
* the deterministic trace sampler decides in well under a microsecond
  per window, and a fully populated registry snapshot renders in
  single-digit milliseconds — both cheap enough to leave on.

Measured numbers are printed and written to ``BENCH_obs.json``
(uploaded as a CI artifact by the ``bench-obs`` job).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, ExperimentContext
from repro.fleet import (
    BackpressurePolicy,
    FleetWindowSampler,
    WorkerShardedFleetMonitor,
)
from repro.fleet.engine import batch_verdict_key
from repro.hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN
from repro.ml import RandomForestClassifier
from repro.obs import MetricsRegistry, TraceContext, TraceSampler
from repro.sim.workloads import FleetPopulation
from repro.uncertainty import TrustedHMD

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
_results: dict = {}

N_DEVICES = 96
N_SHARDS = 4
WINDOWS_PER_DEVICE = 40
BATCH_SIZE = 256
REPEATS = 3
OVERHEAD_GATE = 0.97
MULTI_CORE = (os.cpu_count() or 1) >= 4


@pytest.fixture(scope="module")
def obs_setup():
    config = ExperimentConfig(dvfs_scale=0.25, hpc_scale=0.05, n_estimators=60)
    context = ExperimentContext(config)
    dataset = context.dataset("dvfs")
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=60, random_state=7),
        threshold=0.40,
    ).fit(dataset.train.X, dataset.train.y)
    population = FleetPopulation(
        DVFS_KNOWN_BENIGN,
        DVFS_KNOWN_MALWARE,
        DVFS_UNKNOWN,
        malware_fraction=0.08,
        zero_day_fraction=0.05,
        random_state=7,
    )
    devices = population.sample(N_DEVICES)
    sampler = FleetWindowSampler(dataset, devices, random_state=7)
    arrivals = list(sampler.rounds(WINDOWS_PER_DEVICE))
    return hmd, devices, arrivals


def _drive(monitor, devices, arrivals):
    monitor.register_fleet(devices)
    for device_id, window in arrivals:
        monitor.submit(device_id, window)
    t0 = time.perf_counter()
    batches = monitor.drain()
    return batches, time.perf_counter() - t0


def test_bench_telemetry_overhead(obs_setup):
    """Gate: fully instrumented K-process drain >= 0.97x uninstrumented
    (multi-core hosts), verdicts bitwise identical everywhere."""
    hmd, devices, arrivals = obs_setup
    policy = BackpressurePolicy(max_pending=len(arrivals) + 1)

    plain_elapsed, instr_elapsed = np.inf, np.inf
    plain_batches = instr_batches = None
    # Interleave the repeats so host noise hits both paths alike and
    # take the best of each; workers are reused across repeats (process
    # startup is deployment cost, not per-drain cost).
    with WorkerShardedFleetMonitor(
        hmd,
        n_shards=N_SHARDS,
        batch_size=BATCH_SIZE,
        policy=policy,
        mp_context="fork",
    ) as plain_fleet, WorkerShardedFleetMonitor(
        hmd,
        n_shards=N_SHARDS,
        batch_size=BATCH_SIZE,
        policy=policy,
        mp_context="fork",
        telemetry=True,
        tracer=TraceContext(TraceSampler(rate=1024, seed=7)),
    ) as instr_fleet:
        for repeat in range(REPEATS):
            batches, elapsed = _drive(plain_fleet, devices, arrivals)
            plain_elapsed = min(plain_elapsed, elapsed)
            if repeat == 0:
                plain_batches = batches

            batches, elapsed = _drive(instr_fleet, devices, arrivals)
            instr_elapsed = min(instr_elapsed, elapsed)
            if repeat == 0:
                instr_batches = batches
        instr_report = instr_fleet.report()

    n = len(arrivals)
    ratio = plain_elapsed / instr_elapsed  # instrumented / plain throughput
    verdicts_identical = batch_verdict_key(instr_batches) == batch_verdict_key(
        plain_batches
    )
    counters = (instr_report.telemetry or {}).get("counters", {})
    print(
        f"\nobs bench: {N_DEVICES} devices x {WINDOWS_PER_DEVICE} windows, "
        f"K={N_SHARDS}, batch={BATCH_SIZE}, cpus={os.cpu_count()}\n"
        f"  uninstrumented: {plain_elapsed * 1e3:8.1f} ms "
        f"({n / plain_elapsed:8.0f} windows/sec)\n"
        f"  instrumented  : {instr_elapsed * 1e3:8.1f} ms "
        f"({n / instr_elapsed:8.0f} windows/sec)\n"
        f"  throughput ratio: {ratio:.3f}x "
        f"(gate {'armed' if MULTI_CORE else 'off: single-core host'} "
        f"at {OVERHEAD_GATE}x)   verdicts identical: {verdicts_identical}"
    )
    _results["telemetry_overhead"] = {
        "n_devices": N_DEVICES,
        "n_windows": n,
        "n_shards": N_SHARDS,
        "batch_size": BATCH_SIZE,
        "cpu_count": os.cpu_count(),
        "uninstrumented_sec": plain_elapsed,
        "instrumented_sec": instr_elapsed,
        "uninstrumented_wps": n / plain_elapsed,
        "instrumented_wps": n / instr_elapsed,
        "throughput_ratio": ratio,
        "overhead_gate": OVERHEAD_GATE,
        "throughput_gate_armed": MULTI_CORE,
        "verdicts_identical": verdicts_identical,
        "windows_drained": counters.get("fleet_windows_drained_total"),
    }

    assert verdicts_identical, "telemetry changed the verdict stream"
    # The instrumented drain really did count its own traffic (first
    # repeat only; later repeats accumulate into the same registries).
    assert counters.get("fleet_windows_drained_total", 0) >= n
    if MULTI_CORE:
        assert ratio >= OVERHEAD_GATE, (
            f"telemetry overhead exceeds budget: {ratio:.3f}x < "
            f"{OVERHEAD_GATE}x uninstrumented throughput"
        )


def test_bench_sampler_cost():
    """Gate: the per-window trace-sampling decision costs < 1 µs
    (amortised over block-level sampling, the only way the hot path
    calls it)."""
    sampler = TraceSampler(rate=1024, seed=7)
    seqs = np.arange(100_000, dtype=np.int64)
    sampler.sample_block("dev-0000", seqs)  # warm the device-hash cache
    best = np.inf
    for _ in range(5):
        t0 = time.perf_counter()
        picked = sampler.sample_block("dev-0000", seqs)
        best = min(best, time.perf_counter() - t0)
    per_window = best / len(seqs)
    print(
        f"\nsampler: {len(seqs)} windows in {best * 1e3:.2f} ms "
        f"({per_window * 1e9:.1f} ns/window), "
        f"{int(np.count_nonzero(picked))} sampled at 1/{sampler.rate}"
    )
    _results["sampler_cost"] = {
        "n_windows": len(seqs),
        "best_sec": best,
        "ns_per_window": per_window * 1e9,
        "rate": sampler.rate,
    }
    assert per_window < 1e-6, f"sampler too slow: {per_window * 1e9:.0f} ns/window"


def test_bench_snapshot_latency():
    """Gate: a fully populated registry snapshots in < 10 ms (cheap
    enough to export from the drain loop)."""
    registry = MetricsRegistry()
    rng = np.random.default_rng(7)
    for i in range(24):
        registry.counter(f"fleet_counter_{i}_total").inc(int(rng.integers(1e6)))
    for i in range(8):
        registry.gauge(f"fleet_gauge_{i}").set(float(rng.random()))
    for i in range(6):
        registry.histogram(f"fleet_hist_{i}_seconds").observe_many(
            rng.exponential(0.01, size=10_000)
        )
    best = np.inf
    for _ in range(50):
        t0 = time.perf_counter()
        snapshot = registry.snapshot()
        best = min(best, time.perf_counter() - t0)
    print(
        f"\nsnapshot: {len(snapshot['counters'])} counters, "
        f"{len(snapshot['gauges'])} gauges, "
        f"{len(snapshot['histograms'])} histograms in {best * 1e6:.1f} µs"
    )
    _results["snapshot_latency"] = {
        "n_counters": len(snapshot["counters"]),
        "n_gauges": len(snapshot["gauges"]),
        "n_histograms": len(snapshot["histograms"]),
        "best_sec": best,
    }
    assert best < 1e-2, f"snapshot too slow: {best * 1e3:.1f} ms"


def teardown_module(module):
    """Persist whatever was measured, even on partial runs."""
    if _results:
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
        print(f"\nwrote {RESULTS_PATH}")
