"""Benchmarks E1 — extension experiments beyond the paper's evaluation.

E1: the EM side-channel HMD (third sensor family from the paper's
introduction) under the identical uncertainty framework.
"""

from repro.experiments import run_em_extension


def test_bench_e1_em_sidechannel(benchmark, bench_context_warm):
    """The framework transfers to the EM channel: unknown workloads
    carry clearly more entropy than known ones, with detection quality
    between the DVFS (clean) and HPC (overlapped) datasets."""
    result = benchmark.pedantic(
        lambda: run_em_extension(context=bench_context_warm), rounds=1, iterations=1
    )
    print()
    print(result.as_text())

    assert result.f1_known > 0.9
    assert result.separation() > 0.15
    assert 0.65 < result.unknown_auc < 0.98  # between HPC (~0.5) and DVFS (~0.96)
