"""Benchmark: histogram-binned training backend vs. the seed grower.

Acceptance gates of the training backend (`repro.ml.training`), at the
fleet fitting configuration (n = 20 000 windows, d = 32 features,
M = 100 member trees):

* **ensemble fit >= 5x** — a bagging ensemble whose members grow from
  the shared binned dataset (bin once, per-bin class-count histograms,
  sibling subtraction, bootstrap multiplicities as native weights)
  must fit at least 5x faster than the seed's exact grower (per-node
  argsort over materialised bootstrap replicates);
* **retrain-loop step >= 3x** — one `RetrainingLoop` refit through the
  warm path (`TrustedHMD.partial_refit`: fixed scaler/bin edges,
  member regrowth from the appended binned buffer, flat backend
  recompile) must beat the seed behaviour (full `hmd.fit` from
  scratch) by at least 3x;
* **flat-backend compatibility** — binned-trained trees must flow
  through the PR 2 flattened vote path unchanged (bitwise-identical
  votes/entropies vs. the member loop), and on the fig5 (HPC) workload
  a hist-trained trusted HMD's verdicts must sit within
  rejection-threshold tolerance of the exact-trained one.

Fit timings are single-shot (each fit runs for seconds to minutes, so
scheduler noise is amortised inside the measurement).  Results are
written to ``BENCH_fit.json`` (uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import build_hpc_dataset
from repro.ml import BaggingClassifier, DecisionTreeClassifier, RandomForestClassifier
from repro.uncertainty import TrustedHMD
from repro.uncertainty.entropy import vote_entropy
from repro.uncertainty.online import FlaggedSample, RetrainingLoop

N_WINDOWS = 20_000
N_FEATURES = 32
M = 100
THRESHOLD = 0.40
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_fit.json"

_results: dict = {}


@pytest.fixture(scope="module")
def fit_workload():
    """Synthetic fleet-scale signature matrix (n=20k, d=32).

    A low-dimensional decision surface plus sensor noise, so the grown
    trees have realistic depth (~15 levels) rather than degenerate
    memorisation depth.
    """
    rng = np.random.default_rng(7)
    X = rng.normal(size=(N_WINDOWS, N_FEATURES))
    y = (X[:, :4].sum(axis=1) + rng.normal(scale=0.4, size=N_WINDOWS) > 0).astype(int)
    return X, y


@pytest.fixture(scope="module")
def hpc_dataset():
    """The fig5 workload: overlapping benign/malware HPC signatures."""
    return build_hpc_dataset(seed=7, scale=0.08)


def test_bench_ensemble_fit_gate(fit_workload):
    """Shared-binned bagging fit must be >= 5x the seed grower at M=100."""
    X, y = fit_workload

    t0 = time.perf_counter()
    exact = BaggingClassifier(n_estimators=M, random_state=7).fit(X, y)
    exact_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    hist = BaggingClassifier(
        DecisionTreeClassifier(grower="hist"), n_estimators=M, random_state=7
    ).fit(X, y)
    hist_s = time.perf_counter() - t0

    speedup = exact_s / hist_s
    # Both ensembles must actually have learned the workload.
    probe = X[::97]
    exact_acc = exact.score(probe, y[::97])
    hist_acc = hist.score(probe, y[::97])

    _results["ensemble_fit"] = {
        "n_windows": N_WINDOWS,
        "n_features": N_FEATURES,
        "n_members": M,
        "exact_fit_s": exact_s,
        "hist_fit_s": hist_s,
        "speedup": speedup,
        "exact_accuracy": exact_acc,
        "hist_accuracy": hist_acc,
    }
    print(
        f"\nensemble fit (n={N_WINDOWS}, d={N_FEATURES}, M={M}):\n"
        f"  seed (exact) grower: {exact_s:8.1f} s  (acc {exact_acc:.3f})\n"
        f"  binned grower:       {hist_s:8.1f} s  (acc {hist_acc:.3f})\n"
        f"  speedup:             {speedup:8.1f} x"
    )
    assert hist_acc > 0.9, f"hist ensemble underfits: acc {hist_acc:.3f}"
    assert abs(exact_acc - hist_acc) < 0.05, (
        f"accuracy drifted: exact {exact_acc:.3f} vs hist {hist_acc:.3f}"
    )
    assert speedup >= 5.0, (
        f"binned ensemble fit only {speedup:.1f}x over the seed grower"
    )


def test_bench_retrain_step_gate(fit_workload):
    """A warm partial-refit retrain step must be >= 3x a full refit."""
    X, y = fit_workload
    rng = np.random.default_rng(11)
    X_novel = rng.normal(size=(64, N_FEATURES)) * 0.4
    X_novel[:, 0] += 12.0
    flagged = [
        FlaggedSample(features=x, prediction=0, entropy=0.9, step=i)
        for i, x in enumerate(X_novel)
    ]
    labels = np.ones(len(flagged), dtype=int)
    # A leaner serving ensemble keeps the exact baseline measurable in
    # seconds; the ratio is per-refit and M-independent.
    M_loop = 30

    def step_time(grower):
        hmd = TrustedHMD(
            BaggingClassifier(
                DecisionTreeClassifier(grower=grower),
                n_estimators=M_loop,
                random_state=7,
            ),
            threshold=THRESHOLD,
        ).fit(X, y)
        loop = RetrainingLoop(hmd, X, y, min_batch=len(flagged))
        t0 = time.perf_counter()
        retrained = loop.incorporate(flagged, labels)
        elapsed = time.perf_counter() - t0
        assert retrained
        return elapsed, hmd

    exact_s, _ = step_time("exact")
    hist_s, hmd_hist = step_time("hist")
    # The warm path really retrained: the novel cluster got absorbed.
    assert hmd_hist.predictive_entropy(X_novel).mean() < THRESHOLD

    speedup = exact_s / hist_s
    _results["retrain_step"] = {
        "n_train": N_WINDOWS,
        "n_labelled": len(flagged),
        "n_members": M_loop,
        "full_refit_s": exact_s,
        "partial_refit_s": hist_s,
        "speedup": speedup,
    }
    print(
        f"\nretrain-loop step ({len(flagged)} labelled windows, M={M_loop}):\n"
        f"  seed full refit:     {exact_s:8.1f} s\n"
        f"  warm partial refit:  {hist_s:8.1f} s\n"
        f"  speedup:             {speedup:8.1f} x"
    )
    assert speedup >= 3.0, (
        f"retrain-loop step only {speedup:.1f}x over the seed full refit"
    )


def test_bench_binned_trees_flow_through_flat_backend(hpc_dataset):
    """fig5 workload: binned-trained trees ride the PR 2 backend unchanged."""
    train = hpc_dataset.train
    splits = {"known": hpc_dataset.test.X, "unknown": hpc_dataset.unknown.X}

    verdicts = {}
    for grower in ("exact", "hist"):
        hmd = TrustedHMD(
            RandomForestClassifier(
                n_estimators=60, grower=grower, random_state=7
            ),
            threshold=THRESHOLD,
        ).fit(train.X, train.y)
        ensemble = hmd.ensemble_
        # (a) Bitwise: the compiled vote path reproduces the member
        # loop exactly for binned-trained trees.
        for X_probe in splits.values():
            Z = hmd._transform(X_probe)
            legacy = ensemble.decisions(Z)
            fast = ensemble.decisions_fast(Z)
            np.testing.assert_array_equal(fast, legacy)
            np.testing.assert_array_equal(
                vote_entropy(fast, ensemble.classes_),
                vote_entropy(legacy, ensemble.classes_),
            )
        verdicts[grower] = {
            split: hmd.analyze(X_probe) for split, X_probe in splits.items()
        }

    # (b) Tolerance: hist-trained verdict statistics track exact-trained
    # ones on the paper's fig5 operating point.
    tolerance = {}
    for split in splits:
        exact_v = verdicts["exact"][split]
        hist_v = verdicts["hist"][split]
        d_reject = abs(exact_v.rejection_rate - hist_v.rejection_rate)
        d_entropy = abs(exact_v.entropy.mean() - hist_v.entropy.mean())
        tolerance[split] = {
            "exact_rejection": exact_v.rejection_rate,
            "hist_rejection": hist_v.rejection_rate,
            "d_rejection": d_reject,
            "exact_mean_entropy": float(exact_v.entropy.mean()),
            "hist_mean_entropy": float(hist_v.entropy.mean()),
            "d_mean_entropy": d_entropy,
        }
        print(
            f"\nfig5 {split}: rejection exact {exact_v.rejection_rate:.3f} "
            f"vs hist {hist_v.rejection_rate:.3f} (|d|={d_reject:.3f}); "
            f"mean entropy {exact_v.entropy.mean():.3f} vs "
            f"{hist_v.entropy.mean():.3f}"
        )
        assert d_reject <= 0.05, (
            f"{split}: rejection rate drifted by {d_reject:.3f}"
        )
        assert d_entropy <= 0.05, (
            f"{split}: mean entropy drifted by {d_entropy:.3f}"
        )
    _results["fig5_verdict_tolerance"] = tolerance


def teardown_module(module):
    """Persist whatever was measured, even on partial runs."""
    if _results:
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
        print(f"\nwrote {RESULTS_PATH}")
