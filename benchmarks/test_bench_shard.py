"""Benchmark: the sharded fleet vs. one monitor core.

Acceptance criteria of the sharding subsystem:

* draining 96 devices' traffic through a K=4
  ``ShardedFleetMonitor`` is at least **2x** the drain throughput of a
  single ``FleetMonitor`` over the same submissions, with **bitwise
  identical** verdicts (same predictions, entropies and accept
  decisions per (device, seq)) and identical merged report rows;
* ``snapshot()`` → pickle → ``restore()`` of a half-drained sharded
  fleet resumes with identical subsequent verdicts.

Measured numbers are printed and written to ``BENCH_shard.json``
(uploaded as a CI artifact by the ``bench-shard`` job).
"""

from __future__ import annotations

import json
import pickle
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, ExperimentContext
from repro.fleet import (
    BackpressurePolicy,
    FleetMonitor,
    FleetWindowSampler,
    ShardedFleetMonitor,
)
from repro.fleet.engine import batch_verdict_key
from repro.fleet.report import device_report_key
from repro.hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN
from repro.ml import RandomForestClassifier
from repro.sim.workloads import FleetPopulation
from repro.uncertainty import TrustedHMD

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_shard.json"
_results: dict = {}

N_DEVICES = 96
N_SHARDS = 4
WINDOWS_PER_DEVICE = 40
BATCH_SIZE = 256
REPEATS = 5


@pytest.fixture(scope="module")
def shard_setup():
    config = ExperimentConfig(dvfs_scale=0.25, hpc_scale=0.05, n_estimators=60)
    context = ExperimentContext(config)
    dataset = context.dataset("dvfs")
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=60, random_state=7),
        threshold=0.40,
    ).fit(dataset.train.X, dataset.train.y)
    population = FleetPopulation(
        DVFS_KNOWN_BENIGN,
        DVFS_KNOWN_MALWARE,
        DVFS_UNKNOWN,
        malware_fraction=0.08,
        zero_day_fraction=0.05,
        random_state=7,
    )
    devices = population.sample(N_DEVICES)
    sampler = FleetWindowSampler(dataset, devices, random_state=7)
    arrivals = list(sampler.rounds(WINDOWS_PER_DEVICE))
    return hmd, devices, arrivals


def _drive(monitor, devices, arrivals):
    monitor.register_fleet(devices)
    for device_id, window in arrivals:
        monitor.submit(device_id, window)
    t0 = time.perf_counter()
    batches = monitor.drain()
    return batches, time.perf_counter() - t0


def test_bench_sharded_drain_speedup(shard_setup):
    """Gate: K-shard drain >= 2x one monitor, verdicts bitwise equal."""
    hmd, devices, arrivals = shard_setup
    policy = BackpressurePolicy(max_pending=len(arrivals) + 1)

    single_elapsed, sharded_elapsed = np.inf, np.inf
    single_batches = sharded_batches = None
    single_report = sharded_report = None
    # Interleave the repeats so host noise hits both paths alike and
    # take the best of each (same discipline as the other benches).
    for _ in range(REPEATS):
        monitor = FleetMonitor(hmd, batch_size=BATCH_SIZE, policy=policy)
        batches, elapsed = _drive(monitor, devices, arrivals)
        if elapsed < single_elapsed:
            single_elapsed = elapsed
        single_batches, single_report = batches, monitor.report()

        sharded = ShardedFleetMonitor(
            hmd, n_shards=N_SHARDS, batch_size=BATCH_SIZE, policy=policy
        )
        batches, elapsed = _drive(sharded, devices, arrivals)
        if elapsed < sharded_elapsed:
            sharded_elapsed = elapsed
        sharded_batches, sharded_report = batches, sharded.report()

    n = len(arrivals)
    speedup = single_elapsed / sharded_elapsed
    verdicts_identical = batch_verdict_key(sharded_batches) == batch_verdict_key(
        single_batches
    )
    reports_identical = device_report_key(sharded_report) == device_report_key(
        single_report
    )
    print(
        f"\nshard bench: {N_DEVICES} devices x {WINDOWS_PER_DEVICE} windows, "
        f"K={N_SHARDS}, batch={BATCH_SIZE}\n"
        f"  single : {single_elapsed * 1e3:8.1f} ms "
        f"({n / single_elapsed:8.0f} windows/sec)\n"
        f"  sharded: {sharded_elapsed * 1e3:8.1f} ms "
        f"({n / sharded_elapsed:8.0f} windows/sec)\n"
        f"  speedup: {speedup:8.1f}x   verdicts identical: "
        f"{verdicts_identical}   reports identical: {reports_identical}"
    )
    _results["sharded_drain"] = {
        "n_devices": N_DEVICES,
        "n_windows": n,
        "n_shards": N_SHARDS,
        "batch_size": BATCH_SIZE,
        "single_sec": single_elapsed,
        "sharded_sec": sharded_elapsed,
        "single_wps": n / single_elapsed,
        "sharded_wps": n / sharded_elapsed,
        "speedup": speedup,
        "verdicts_identical": verdicts_identical,
        "reports_identical": reports_identical,
    }

    assert verdicts_identical, "sharded verdicts drifted from the single path"
    assert reports_identical, "merged report drifted from the single path"
    assert speedup >= 2.0, f"sharded drain only {speedup:.1f}x"


def test_bench_snapshot_restore_resumes(shard_setup):
    """Gate: checkpoint mid-stream, restore, identical verdicts after."""
    hmd, devices, arrivals = shard_setup
    policy = BackpressurePolicy(max_pending=len(arrivals) + 1)

    fleet = ShardedFleetMonitor(
        hmd, n_shards=N_SHARDS, batch_size=BATCH_SIZE, policy=policy
    )
    fleet.register_fleet(devices)
    half = len(arrivals) // 2
    for device_id, window in arrivals[:half]:
        fleet.submit(device_id, window)
    fleet.drain(max_batches=1)  # checkpoint with a live backlog

    t0 = time.perf_counter()
    blob = pickle.dumps(fleet.snapshot())
    snapshot_elapsed = time.perf_counter() - t0
    t0 = time.perf_counter()
    restored = ShardedFleetMonitor.restore(hmd, pickle.loads(blob))
    restore_elapsed = time.perf_counter() - t0

    for monitor in (fleet, restored):
        for device_id, window in arrivals[half:]:
            monitor.submit(device_id, window)
    tail = fleet.drain()
    tail_restored = restored.drain()
    identical = batch_verdict_key(tail_restored) == batch_verdict_key(tail)
    reports_identical = device_report_key(restored.report()) == device_report_key(
        fleet.report()
    )
    print(
        f"\nsnapshot/restore: {len(blob)} bytes, snapshot "
        f"{snapshot_elapsed * 1e3:.1f} ms, restore "
        f"{restore_elapsed * 1e3:.1f} ms, resumed verdicts identical: "
        f"{identical}"
    )
    _results["snapshot_restore"] = {
        "snapshot_bytes": len(blob),
        "snapshot_sec": snapshot_elapsed,
        "restore_sec": restore_elapsed,
        "resumed_verdicts_identical": identical,
        "reports_identical": reports_identical,
    }

    assert identical, "restored fleet produced different verdicts"
    assert reports_identical, "restored fleet report drifted"


def teardown_module(module):
    """Persist whatever was measured, even on partial runs."""
    if _results:
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
        print(f"\nwrote {RESULTS_PATH}")
