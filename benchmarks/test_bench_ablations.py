"""Benchmarks A1-A3 — reproduction-original ablation studies.

A1: ensemble entropy vs. Platt-scaled confidence for unknown detection.
A2: aleatoric/epistemic decomposition across datasets and splits.
A3: bootstrap size × base family vs. diversity and detection quality.
"""

from repro.experiments import (
    run_decomposition_ablation,
    run_diversity_ablation,
    run_platt_ablation,
)


def test_bench_a1_platt_vs_entropy(benchmark, bench_context_warm):
    """Ensemble entropy must dominate Platt confidence as an unknown
    detector (the paper's Section II.E argument, quantified)."""
    result = benchmark.pedantic(
        lambda: run_platt_ablation(context=bench_context_warm), rounds=1, iterations=1
    )
    print()
    print(result.as_text())
    assert result.entropy_wins()
    assert result.entropy_auc > 0.85
    # Platt stays confident on unknowns — the failure the paper warns of.
    assert result.platt_confidence_unknown > 0.8


def test_bench_a2_decomposition(benchmark, bench_context_warm):
    """DVFS unknowns are epistemic-dominated; HPC uncertainty is
    aleatoric-dominated (the paper's future-work analysis)."""
    result = benchmark.pedantic(
        lambda: run_decomposition_ablation(context=bench_context_warm),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.as_text())
    assert result.mean_epistemic("dvfs", "unknown") > result.mean_epistemic(
        "dvfs", "known"
    )
    assert result.mean_aleatoric("hpc", "known") > result.mean_epistemic("hpc", "known")


def test_bench_a3_diversity(benchmark, bench_context_warm):
    """Diversity sweep: tree ensembles out-detect convex-learner bags."""
    result = benchmark.pedantic(
        lambda: run_diversity_ablation(context=bench_context_warm, n_estimators=25),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.as_text())
    assert result.auc("tree", 1.0) > result.auc("linsvm", 1.0)
    # Smaller bootstrap replicates increase member disagreement.
    assert result.diversity("tree", 0.3) >= result.diversity("tree", 1.0) - 0.05


def test_bench_a4_governor(benchmark, bench_context_warm):
    """Sensor-policy ablation: the performance governor destroys the
    DVFS signature (Section III.C sensor-selection point)."""
    from repro.experiments import run_governor_ablation

    result = benchmark.pedantic(
        lambda: run_governor_ablation(context=bench_context_warm, n_estimators=40),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.as_text())
    assert result.f1("ondemand") > 0.95
    assert result.f1("performance") < result.f1("ondemand") - 0.1
    assert result.unknown_auc("performance") < result.unknown_auc("ondemand") - 0.2


def test_bench_a5_evasion(benchmark, bench_context_warm):
    """Mimicry sweep: raw detection decays with stealth while the
    uncertainty flag recovers a large part of the loss."""
    from repro.experiments import run_evasion_ablation

    result = benchmark.pedantic(
        lambda: run_evasion_ablation(context=bench_context_warm, n_windows=60),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.as_text())
    assert result.caught(0.0) > 0.95
    assert result.detected(0.5) < result.detected(0.0)
    assert result.caught(0.5) >= result.detected(0.5) + 0.2
