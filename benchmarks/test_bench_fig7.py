"""Benchmark F7 — Fig. 7a/7b: rejection curves and F1 vs. threshold.

Shape assertions:
* 7a — at some threshold with ≤10% known rejection, RF rejects most of
  the unknown inputs; the SVM ensemble is far worse (paper Section V.A);
* 7b — F1 of accepted predictions rises as the threshold tightens, for
  both RF-DVFS and RF-HPC.
"""

import numpy as np

from repro.experiments import run_fig7a, run_fig7b


def test_bench_fig7a(benchmark, bench_context_warm):
    """Regenerate the Fig. 7a rejection-curve series."""
    result = benchmark.pedantic(
        lambda: run_fig7a(context=bench_context_warm), rounds=1, iterations=1
    )
    print()
    print(result.as_text())

    # Best RF operating point within a 10% known-rejection budget.
    best_unknown = 0.0
    for i, _ in enumerate(result.thresholds):
        known = result.curves[("rf", "known")][i]
        unknown = result.curves[("rf", "unknown")][i]
        if known <= 10.0:
            best_unknown = max(best_unknown, unknown)
    assert best_unknown >= 80.0

    svm_best = 0.0
    for i, _ in enumerate(result.thresholds):
        if result.curves[("svm", "known")][i] <= 10.0:
            svm_best = max(svm_best, result.curves[("svm", "unknown")][i])
    assert svm_best < best_unknown - 15.0

    for curve in result.curves.values():
        assert np.all(np.diff(curve) <= 1e-9)  # monotone in threshold


def test_bench_fig7b(benchmark, bench_context_warm):
    """Regenerate the Fig. 7b F1-vs-threshold series."""
    result = benchmark.pedantic(
        lambda: run_fig7b(context=bench_context_warm), rounds=1, iterations=1
    )
    print()
    print(result.as_text())

    for domain in ("dvfs", "hpc"):
        assert result.best_f1(domain) > result.final_f1(domain)
    # DVFS approaches a perfect score once uncertain inputs are rejected.
    assert result.best_f1("dvfs") > 0.95
    # HPC improves by a large margin (paper: 0.84 -> ~0.95).
    assert result.best_f1("hpc") >= result.final_f1("hpc") + 0.1
