"""Benchmark F9 — Fig. 9a/9b: ensemble-size convergence and HPC curves.

Shape assertions:
* 9a — mean entropy stabilises by roughly 20-30 base classifiers
  (the paper's "more than 20 adds unnecessary overhead");
* 9b — the HPC known and unknown rejection curves track each other.
"""

from repro.experiments import run_fig9a, run_fig9b


def test_bench_fig9a(benchmark, bench_context_warm):
    """Regenerate the Fig. 9a entropy-vs-M series."""
    result = benchmark.pedantic(
        lambda: run_fig9a(context=bench_context_warm), rounds=1, iterations=1
    )
    print()
    print(result.as_text())

    assert result.stabilization_size(tolerance=0.03) <= 30
    # Unknown entropy stays above known at every ensemble size > 1.
    for m, known, unknown in zip(result.sizes[1:], result.known[1:], result.unknown[1:]):
        assert unknown > known, f"M={m}"


def test_bench_fig9b(benchmark, bench_context_warm):
    """Regenerate the Fig. 9b HPC rejection curves."""
    result = benchmark.pedantic(
        lambda: run_fig9b(context=bench_context_warm), rounds=1, iterations=1
    )
    print()
    print(result.as_text())

    # Known and unknown populations are indistinguishable to the
    # rejection mechanism (mean gap below 15 percentage points).
    assert result.known_unknown_tracking_error("rf") < 15.0
    assert result.known_unknown_tracking_error("lr") < 20.0
