"""Benchmark F8 — Fig. 8: t-SNE latent-space geometry.

Shape assertions: the DVFS training classes are far purer (more
disjoint) than the HPC classes, and the HPC overlap score is
substantial — the quantitative counterpart of the paper's side-by-side
t-SNE plots.
"""

from repro.experiments import run_fig8


def test_bench_fig8(benchmark, bench_context_warm):
    """Regenerate the Fig. 8 embedding + geometry metrics."""
    result = benchmark.pedantic(
        lambda: run_fig8(context=bench_context_warm, n_embed=700, tsne_iterations=300),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.as_text())

    dvfs = result.metrics["dvfs"]
    hpc = result.metrics["hpc"]
    # Disjoint DVFS classes vs. overlapping HPC classes.
    assert dvfs["train_neighborhood_purity"] > 0.9
    assert hpc["train_neighborhood_purity"] < dvfs["train_neighborhood_purity"]
    assert hpc["train_class_overlap"] > 0.15
    assert dvfs["train_silhouette"] > hpc["train_silhouette"]
    # The embedding preserves the separation structure.
    assert dvfs["embedding_purity"] > 0.85
