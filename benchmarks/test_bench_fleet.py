"""Benchmark: batched fleet inference vs. the sequential online loop.

Acceptance criteria of the fleet engine:

* on a 64-device simulated fleet, the batched FleetMonitor sustains at
  least 5x the windows/sec of the sequential per-window OnlineMonitor
  loop (in practice the gap is 1-2 orders of magnitude — the batch
  amortises the per-call Python overhead of every ensemble member);
* batched verdicts are **bitwise identical** to sequential ones: every
  stage of the pipeline (scaling, per-row tree routing, vote
  histograms, entropy) is row-independent, so batch composition cannot
  change results.

The gate runs through ``run_fleet`` — the same harness the
``python -m repro.experiments fleet`` runner uses — so the benchmark
and the experiment can never measure different things.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import ExperimentConfig, ExperimentContext
from repro.experiments.fleet import run_fleet
from repro.fleet import BackpressurePolicy, FleetMonitor, FleetWindowSampler
from repro.hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN
from repro.ml import RandomForestClassifier
from repro.sim import FleetPopulation
from repro.uncertainty import TrustedHMD

N_DEVICES = 64
ROUNDS = 30
BATCH_SIZE = 256


@pytest.fixture(scope="module")
def fleet_context():
    config = ExperimentConfig(dvfs_scale=0.25, n_estimators=60)
    return ExperimentContext(config)


def test_bench_fleet_throughput_and_equivalence(fleet_context):
    result = run_fleet(
        context=fleet_context,
        n_devices=N_DEVICES,
        windows_per_device=ROUNDS,
        batch_size=BATCH_SIZE,
    )
    print(
        f"\nfleet bench: {result.n_devices} devices, {result.n_windows} windows\n"
        f"  sequential: {result.sequential_wps:10.0f} windows/sec\n"
        f"  batched:    {result.batched_wps:10.0f} windows/sec "
        f"(batch={result.batch_size})\n"
        f"  speedup:    {result.speedup:10.1f}x"
    )

    # --- acceptance: >= 5x throughput ------------------------------
    assert result.speedup >= 5.0, f"batched speedup only {result.speedup:.1f}x"

    # --- acceptance: bitwise-identical verdicts --------------------
    assert result.verdicts_identical
    assert result.n_shed == 0  # the bench queue is sized to shed nothing


def test_bench_fleet_scaling_with_batch_size(fleet_context):
    """Throughput grows monotonically-ish with batch size (reported)."""
    dataset = fleet_context.dataset("dvfs")
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=60, random_state=7),
        threshold=0.40,
    ).fit(dataset.train.X, dataset.train.y)
    devices = FleetPopulation(
        DVFS_KNOWN_BENIGN,
        DVFS_KNOWN_MALWARE,
        DVFS_UNKNOWN,
        malware_fraction=0.08,
        zero_day_fraction=0.05,
        random_state=7,
    ).sample(N_DEVICES)
    sampler = FleetWindowSampler(dataset, devices, random_state=7)
    arrivals = list(sampler.rounds(ROUNDS))
    n_windows = len(arrivals)

    print(f"\nfleet batch-size sweep ({n_windows} windows):")
    throughputs = {}
    for batch_size in (1, 16, 64, 256):
        fleet = FleetMonitor(
            hmd,
            batch_size=batch_size,
            policy=BackpressurePolicy(max_pending=n_windows + 1),
        )
        fleet.register_fleet(devices)
        t0 = time.perf_counter()
        for device_id, window in arrivals:
            fleet.submit(device_id, window)
        fleet.drain()
        elapsed = time.perf_counter() - t0
        throughputs[batch_size] = n_windows / elapsed
        print(f"  batch={batch_size:4d}: {throughputs[batch_size]:10.0f} windows/sec")
    assert throughputs[256] > throughputs[1]
