"""Benchmark: a seeded chaos campaign vs. the fault-free worker fleet.

Acceptance criteria of the chaos-hardened fleet (seed configurable via
``CHAOS_SEED`` so CI can sweep a matrix):

* a seeded kill+hang+corrupt campaign against a K=4
  ``WorkerShardedFleetMonitor`` produces **bitwise identical**
  non-quarantined verdicts to the fault-free run over the same
  submissions — restarts, replays and reships included;
* **zero windows silently lost**: every admitted window is accounted
  for (:func:`account_windows` comes back empty);
* drain throughput under chaos stays at least **0.7x** the fault-free
  baseline — degradation is graceful, not a collapse.  The workload is
  deliberately larger than the other worker benches so fixed recovery
  costs (respawn, replay, the hang stall) amortize the way they do in
  a real deployment; like those benches the throughput gate only arms
  on a multi-core host, while the equivalence and accounting
  assertions are unconditional.  (Poison-window quarantine has its own
  bitwise tests in ``tests/fleet/test_resilience.py`` — bisection's
  probe restarts are intentionally expensive and not part of the
  steady-degradation gate.)

Measured numbers are printed and written to ``BENCH_chaos.json``
(uploaded as a CI artifact by the ``chaos`` job and merged into the
bench trajectory).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, ExperimentContext
from repro.fleet import (
    BackpressurePolicy,
    FaultPlan,
    FleetWindowSampler,
    WorkerShardedFleetMonitor,
    account_windows,
)
from repro.fleet.engine import batch_verdict_key, batch_window_keys
from repro.hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN
from repro.ml import RandomForestClassifier
from repro.sim.workloads import FleetPopulation
from repro.uncertainty import TrustedHMD

pytestmark = pytest.mark.chaos

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"
_results: dict = {}

N_DEVICES = 96
N_SHARDS = 4
WINDOWS_PER_DEVICE = 2000
BATCH_SIZE = 256
REPEATS = 3
SEED = int(os.environ.get("CHAOS_SEED", "7"))
MULTI_CORE = (os.cpu_count() or 1) >= 4
THROUGHPUT_FLOOR = 0.7


@pytest.fixture(scope="module")
def chaos_setup():
    config = ExperimentConfig(dvfs_scale=0.25, hpc_scale=0.05, n_estimators=60)
    context = ExperimentContext(config)
    dataset = context.dataset("dvfs")
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=60, random_state=7),
        threshold=0.40,
    ).fit(dataset.train.X, dataset.train.y)
    population = FleetPopulation(
        DVFS_KNOWN_BENIGN,
        DVFS_KNOWN_MALWARE,
        DVFS_UNKNOWN,
        malware_fraction=0.08,
        zero_day_fraction=0.05,
        random_state=7,
    )
    devices = population.sample(N_DEVICES)
    sampler = FleetWindowSampler(dataset, devices, random_state=7)
    arrivals = list(sampler.rounds(WINDOWS_PER_DEVICE))
    return hmd, devices, arrivals


def _drive(monitor, devices, arrivals):
    monitor.register_fleet(devices)
    for device_id, window in arrivals:
        monitor.submit(device_id, window)
    t0 = time.perf_counter()
    batches = monitor.drain()
    return batches, time.perf_counter() - t0


def test_bench_chaos_campaign(chaos_setup):
    """Gate: seeded kill+hang+corrupt campaign — equivalent verdicts,
    exact accounting, graceful throughput."""
    hmd, devices, arrivals = chaos_setup
    policy = BackpressurePolicy(max_pending=len(arrivals) + 1)
    plan = FaultPlan.generate(
        SEED,
        n_shards=N_SHARDS,
        crashes=3,
        hangs=1,
        slows=2,
        corruptions=2,
        horizon=40,
        slow_seconds=0.01,
        hang_seconds=0.03,  # a stall, recovered within the heartbeat
    )

    clean_elapsed, chaos_elapsed = np.inf, np.inf
    clean_batches = chaos_batches = None
    chaos_report = None
    quarantined: set = set()
    restarts = 0
    # Interleaved best-of repeats, same discipline as the worker bench.
    # The fault-free fleet is reused across repeats (startup is
    # deployment cost); the chaos fleet is rebuilt each repeat so the
    # life-indexed fault schedule re-fires identically every time.
    with WorkerShardedFleetMonitor(
        hmd,
        n_shards=N_SHARDS,
        batch_size=BATCH_SIZE,
        policy=policy,
        mp_context="fork",
    ) as clean_fleet:
        for repeat in range(REPEATS):
            batches, elapsed = _drive(clean_fleet, devices, arrivals)
            clean_elapsed = min(clean_elapsed, elapsed)
            if repeat == 0:
                clean_batches = batches

            with WorkerShardedFleetMonitor(
                hmd,
                n_shards=N_SHARDS,
                batch_size=BATCH_SIZE,
                policy=policy,
                mp_context="fork",
                checkpoint_every=4,
                worker_timeout=5.0,
                chaos=plan,
            ) as chaos_fleet:
                batches, elapsed = _drive(chaos_fleet, devices, arrivals)
                chaos_elapsed = min(chaos_elapsed, elapsed)
                if repeat == 0:
                    chaos_batches = batches
                    chaos_report = chaos_fleet.report()
                    quarantined = chaos_fleet.quarantine.keys()
                    restarts = sum(
                        r.total_restarts for r in chaos_report.shard_health
                    )

    n = len(arrivals)
    ratio = clean_elapsed / chaos_elapsed
    verdicts_identical = batch_verdict_key(chaos_batches) == batch_verdict_key(
        clean_batches
    )
    missing = account_windows(
        batch_window_keys(clean_batches),
        batch_window_keys(chaos_batches),
        quarantined,
    )
    print(
        f"\nchaos bench: seed={SEED}, {N_DEVICES} devices x "
        f"{WINDOWS_PER_DEVICE} windows, K={N_SHARDS}, "
        f"batch={BATCH_SIZE}, cpus={os.cpu_count()}\n"
        f"  campaign   : {plan.counts()} (restarts observed: {restarts})\n"
        f"  fault-free : {clean_elapsed * 1e3:8.1f} ms "
        f"({n / clean_elapsed:8.0f} windows/sec)\n"
        f"  under chaos: {chaos_elapsed * 1e3:8.1f} ms "
        f"({n / chaos_elapsed:8.0f} windows/sec)\n"
        f"  throughput ratio: {ratio:5.2f}x "
        f"(floor {THROUGHPUT_FLOOR}x, gate "
        f"{'armed' if MULTI_CORE else 'off: single-core host'})\n"
        f"  verdicts identical: {verdicts_identical}   "
        f"quarantined: {sorted(quarantined)}   lost: {len(missing)}"
    )
    _results["chaos_campaign"] = {
        "seed": SEED,
        "n_devices": N_DEVICES,
        "n_windows": n,
        "n_shards": N_SHARDS,
        "batch_size": BATCH_SIZE,
        "cpu_count": os.cpu_count(),
        "campaign": plan.counts(),
        "restarts_observed": restarts,
        "fault_free_sec": clean_elapsed,
        "chaos_sec": chaos_elapsed,
        "fault_free_wps": n / clean_elapsed,
        "chaos_wps": n / chaos_elapsed,
        "throughput_ratio": ratio,
        "throughput_floor": THROUGHPUT_FLOOR,
        "throughput_gate_armed": MULTI_CORE,
        "verdicts_identical": verdicts_identical,
        "n_quarantined": len(quarantined),
        "windows_lost": len(missing),
    }

    assert verdicts_identical, "chaos verdicts drifted from fault-free run"
    assert not missing, f"windows silently lost under chaos: {missing[:5]}"
    assert not quarantined, "no poison scheduled, nothing may be quarantined"
    if MULTI_CORE:
        assert ratio >= THROUGHPUT_FLOOR, (
            f"chaos drain degraded to {ratio:.2f}x of fault-free "
            f"(floor {THROUGHPUT_FLOOR}x)"
        )


def teardown_module(module):
    """Persist whatever was measured, even on partial runs."""
    if _results:
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
        print(f"\nwrote {RESULTS_PATH}")
