"""Benchmark: the batched ingest front vs. the per-window reference.

Acceptance criteria of the vectorized ingest rework:

* batched DVFS ``extract_windows`` is at least **10x** faster than the
  per-window reference path on a 500-window x 4-channel trace, with a
  **bitwise identical** feature matrix;
* end-to-end trace→verdict fleet throughput (raw trace → windowed
  features → bulk queue ingress → compiled vote path) is at least
  **2x** the PR 3 ingest front at 48 devices / batch 256, with
  bitwise-identical verdicts;
* the fused scaler→PCA affine front leaves fig5-style HPC verdicts
  unchanged: rejection/entropy drift vs. the two-pass transform is
  ≤ 1e-9 (and exactly zero without PCA, where fusion preserves the op
  order).

Measured numbers are printed and written to ``BENCH_ingest.json``
(uploaded as a CI artifact by the ``bench-ingest`` job).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, ExperimentContext
from repro.experiments.ingest import run_ingest
from repro.hmd.features import DvfsFeatureExtractor
from repro.ml import RandomForestClassifier
from repro.sim.trace import DvfsTrace
from repro.uncertainty import TrustedHMD

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_ingest.json"
_results: dict = {}

N_WINDOWS = 500
N_CHANNELS = 4
WINDOW_STEPS = 240

N_DEVICES = 48
WINDOWS_PER_DEVICE = 8
BATCH_SIZE = 256


@pytest.fixture(scope="module")
def ingest_context():
    config = ExperimentConfig(
        dvfs_scale=0.25, hpc_scale=0.05, n_estimators=60
    )
    return ExperimentContext(config)


def _bench_trace() -> DvfsTrace:
    rng = np.random.default_rng(7)
    cardinalities = (8, 6, 5, 7)
    n_steps = N_WINDOWS * WINDOW_STEPS
    states = np.column_stack(
        [rng.integers(0, k, n_steps) for k in cardinalities]
    )
    return DvfsTrace(
        states=states,
        frequencies_mhz=tuple(
            tuple(100.0 * (i + 1) for i in range(k)) for k in cardinalities
        ),
        channel_names=tuple(f"ch{i}" for i in range(N_CHANNELS)),
        temperature_c=rng.normal(40.0, 3.0, n_steps),
    )


def test_bench_extract_windows_speedup():
    """Gate: batched extraction >= 10x, bitwise identical features."""
    trace = _bench_trace()
    extractor = DvfsFeatureExtractor()

    # Warm both paths once (allocator, fft plan caches), then take the
    # best of a few repeats so host noise cannot flip the gate.
    extractor.extract_windows(trace, WINDOW_STEPS)
    batched_elapsed = np.inf
    for _ in range(3):
        t0 = time.perf_counter()
        batched = extractor.extract_windows(trace, WINDOW_STEPS)
        batched_elapsed = min(batched_elapsed, time.perf_counter() - t0)

    reference_elapsed = np.inf
    for _ in range(2):
        t0 = time.perf_counter()
        reference = extractor.extract_windows_reference(trace, WINDOW_STEPS)
        reference_elapsed = min(reference_elapsed, time.perf_counter() - t0)

    speedup = reference_elapsed / batched_elapsed
    identical = bool(np.array_equal(batched, reference))
    print(
        f"\nextract bench: {N_WINDOWS} windows x {N_CHANNELS} channels "
        f"x {WINDOW_STEPS} steps\n"
        f"  reference: {reference_elapsed * 1e3:9.1f} ms "
        f"({N_WINDOWS / reference_elapsed:8.0f} windows/sec)\n"
        f"  batched:   {batched_elapsed * 1e3:9.1f} ms "
        f"({N_WINDOWS / batched_elapsed:8.0f} windows/sec)\n"
        f"  speedup:   {speedup:9.1f}x   bitwise identical: {identical}"
    )
    _results["extract_windows"] = {
        "n_windows": N_WINDOWS,
        "n_channels": N_CHANNELS,
        "window_steps": WINDOW_STEPS,
        "reference_sec": reference_elapsed,
        "batched_sec": batched_elapsed,
        "speedup": speedup,
        "bitwise_identical": identical,
    }

    assert identical, "batched features drifted from the reference path"
    assert speedup >= 10.0, f"batched extraction only {speedup:.1f}x"


def test_bench_trace_to_verdict_throughput(ingest_context):
    """Gate: end-to-end ingest >= 2x the PR 3 front, verdicts identical."""
    result = run_ingest(
        context=ingest_context,
        n_devices=N_DEVICES,
        windows_per_device=WINDOWS_PER_DEVICE,
        batch_size=BATCH_SIZE,
    )
    print("\n" + result.as_text())
    _results["trace_to_verdict"] = {
        "n_devices": result.n_devices,
        "n_windows": result.n_windows,
        "batch_size": result.batch_size,
        "reference_wps": result.reference_wps,
        "batched_wps": result.batched_wps,
        "speedup": result.speedup,
        "features_identical": result.features_identical,
        "verdicts_identical": result.verdicts_identical,
    }

    assert result.features_identical
    assert result.verdicts_identical
    assert result.speedup >= 2.0, f"ingest speedup only {result.speedup:.1f}x"


def test_bench_fused_front_verdict_drift(ingest_context):
    """Gate: fused affine front leaves fig5 HPC verdicts unchanged."""
    dataset = ingest_context.dataset("hpc")
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=60, random_state=7),
        threshold=0.40,
        n_components=0.95,
    ).fit(dataset.train.X, dataset.train.y)

    drift = {}
    for split, X in (("known", dataset.test.X), ("unknown", dataset.unknown.X)):
        fused = hmd._transform(X)
        two_pass = hmd.pca_.transform(
            hmd.scaler_.transform(np.asarray(X, dtype=float))
        )
        feature_drift = float(np.abs(fused - two_pass).max())

        verdict = hmd.analyze(X)
        labels, entropy = hmd.estimator_.predict_with_uncertainty(two_pass)
        rejection_ref = float(
            np.mean(entropy > hmd.policy_.threshold)
        )
        d_entropy = float(np.abs(verdict.entropy - entropy).max())
        d_rejection = abs(verdict.rejection_rate - rejection_ref)
        drift[split] = {
            "feature_drift": feature_drift,
            "entropy_drift": d_entropy,
            "rejection_fused": verdict.rejection_rate,
            "rejection_two_pass": rejection_ref,
        }
        print(
            f"\nfused front {split}: feature drift {feature_drift:.2e}, "
            f"entropy drift {d_entropy:.2e}, rejection "
            f"{verdict.rejection_rate:.4f} vs {rejection_ref:.4f}"
        )
        assert feature_drift <= 1e-9
        assert d_entropy <= 1e-9
        assert np.array_equal(verdict.predictions, labels)
        assert d_rejection <= 1e-12

    # Without PCA the fused front is the scaler itself: exactly zero.
    hmd_plain = TrustedHMD(
        RandomForestClassifier(n_estimators=20, random_state=7),
        threshold=0.40,
    ).fit(dataset.train.X, dataset.train.y)
    X = dataset.test.X
    assert np.array_equal(
        hmd_plain._transform(X),
        hmd_plain.scaler_.transform(np.asarray(X, dtype=float)),
    )
    drift["no_pca_bitwise"] = True
    _results["fused_front"] = drift


def teardown_module(module):
    """Persist whatever was measured, even on partial runs."""
    if _results:
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
        print(f"\nwrote {RESULTS_PATH}")
