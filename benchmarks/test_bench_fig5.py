"""Benchmark F5 — Fig. 5: HPC entropy boxplots (RF / LR; SVM diverges).

Shape assertions: the known-data entropy is as high as the unknown-data
entropy (both medians high, gap small) — the overlapping-classes
finding of Section V.B.
"""

from repro.experiments import run_fig5


def test_bench_fig5(benchmark, bench_context_warm):
    """Regenerate the Fig. 5 boxplot statistics."""
    result = benchmark.pedantic(
        lambda: run_fig5(context=bench_context_warm), rounds=1, iterations=1
    )
    print()
    print(result.as_text())

    assert abs(result.known_unknown_gap("rf")) < 0.25
    assert result.stats[("rf", "known")]["median"] > 0.3
    assert result.stats[("rf", "unknown")]["median"] > 0.3
