"""Benchmark: the low-precision inference fast path.

Acceptance criteria of the quantized/narrowed kernels (PR 8):

* **uint8 drain** — batch-256 drains through the
  :class:`QuantizedForest` bin-code kernel are at least **1.5x** the
  float64 compiled path on a fleet-sized forest (M=100 hist-grown
  trees, ~1M nodes: node tables far larger than L2, where the 8-byte
  packed record + level-major layout pay off), with votes **exactly
  identical** — the bin-code rewrite is equivalence-preserving by
  construction, so this is an equality assert, not a tolerance;
* **float32 front** — the fused scaler→PCA affine applied to
  arena-resident float32 windows is at least **1.3x** the float64
  front, the narrowed features drift at most **1e-6** per feature
  (relative to each column's float64 scale), and the fig. 5 verdict
  pipeline (entropy + accept decisions on the DVFS test/unknown
  splits) is unchanged.

Windows are quantized **once at ingest** in the deployed fleet (the
shm ring carries codes, not floats), so the drain gate times traversal
over pre-encoded codes; the one-off encode cost is measured and
reported alongside.

Measured numbers are printed and written to ``BENCH_quant.json``
(uploaded as a CI artifact by the ``bench-quant`` job).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data.builders import build_dvfs_dataset
from repro.ml import RandomForestClassifier
from repro.uncertainty import TrustedHMD

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_quant.json"
_results: dict = {}

BATCH = 256
REPEATS = 5

# Fleet-scale synthetic traffic: overlapping classes (linear boundary
# + heavy label noise) force the hist grower into deep trees, so M=100
# members yield a ~1M-node forest — the regime the uint8 kernel is
# built for.  Feature count mirrors an HPC-counter window.
N_TRAIN = 45_000
N_FEATURES = 75
N_PROBE = 4_096
N_ESTIMATORS = 100


@pytest.fixture(scope="module")
def fleet_forest():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(N_TRAIN, N_FEATURES))
    w = rng.normal(size=N_FEATURES)
    y = ((X @ w + rng.normal(scale=3.0, size=N_TRAIN)) > 0).astype(int)
    t0 = time.perf_counter()
    ensemble = RandomForestClassifier(
        n_estimators=N_ESTIMATORS, random_state=7, grower="hist"
    ).fit(X, y)
    fit_sec = time.perf_counter() - t0
    probe = rng.normal(size=(N_PROBE, N_FEATURES))
    return ensemble, probe, fit_sec


def _batched(fn, data):
    """One full sweep over ``data`` in BATCH-row drains; seconds."""
    t0 = time.perf_counter()
    for start in range(0, len(data), BATCH):
        fn(data[start : start + BATCH])
    return time.perf_counter() - t0


def test_bench_quantized_drain(fleet_forest):
    """Gate: uint8 bin-code drain >= 1.5x the float64 compiled path,
    votes exactly identical."""
    ensemble, probe, fit_sec = fleet_forest
    flat = ensemble.compile(mode="flat")
    quant = ensemble.compile(mode="quantized")

    # The equivalence contract first: every vote, bit for bit.
    votes_flat = flat.decisions(probe)
    votes_quant = quant.decisions(probe)
    votes_identical = np.array_equal(votes_flat, votes_quant)

    # One-off ingest-side encode (measured, reported, not part of the
    # drain: deployed rings carry codes).
    t0 = time.perf_counter()
    codes = quant.encode(probe)
    encode_sec = time.perf_counter() - t0

    # Interleave the repeats so host noise hits both kernels alike and
    # take the best of each (same discipline as the other benches).
    flat_sec, quant_sec = np.inf, np.inf
    for _ in range(REPEATS):
        flat_sec = min(flat_sec, _batched(flat.decisions, probe))
        quant_sec = min(quant_sec, _batched(quant.decisions, codes))
    speedup = flat_sec / quant_sec

    flat_mb = (flat.fg.nbytes + flat.threshold.nbytes) / 1e6
    packed_mb = quant.packed.nbytes / 1e6
    print(
        f"\nquantized drain: M={N_ESTIMATORS}, {flat.n_nodes} nodes, "
        f"batch={BATCH}, {N_PROBE} windows (fit {fit_sec:.0f}s)\n"
        f"  float64 tables: {flat_mb:7.1f} MB   uint8 packed: {packed_mb:5.1f} MB\n"
        f"  float64 drain : {flat_sec * 1e3:8.1f} ms "
        f"({N_PROBE / flat_sec:8.0f} windows/sec)\n"
        f"  uint8 drain   : {quant_sec * 1e3:8.1f} ms "
        f"({N_PROBE / quant_sec:8.0f} windows/sec)\n"
        f"  one-off encode: {encode_sec * 1e3:8.1f} ms\n"
        f"  speedup: {speedup:.2f}x   votes identical: {votes_identical}"
    )
    _results["quantized_drain"] = {
        "n_estimators": N_ESTIMATORS,
        "n_nodes": int(flat.n_nodes),
        "max_depth": int(flat.max_depth),
        "batch_size": BATCH,
        "n_windows": N_PROBE,
        "fit_sec": fit_sec,
        "float64_table_mb": flat_mb,
        "packed_table_mb": packed_mb,
        "float64_sec": flat_sec,
        "uint8_sec": quant_sec,
        "encode_sec": encode_sec,
        "float64_wps": N_PROBE / flat_sec,
        "uint8_wps": N_PROBE / quant_sec,
        "speedup": speedup,
        "votes_identical": votes_identical,
    }

    assert votes_identical, "uint8 votes drifted from the float64 kernel"
    assert speedup >= 1.5, f"uint8 drain only {speedup:.2f}x"


def test_bench_float32_front(fleet_forest):
    """Gate: float32 fused front >= 1.3x the float64 GEMM, feature
    drift <= 1e-6 of each column's float64 scale."""
    rng = np.random.default_rng(11)
    n_components = 16
    X = rng.normal(size=(4_000, N_FEATURES))
    w = rng.normal(size=N_FEATURES)
    y = ((X @ w) > 0).astype(int)
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=30, random_state=7, grower="hist"),
        threshold=0.40,
        n_components=n_components,
    ).fit(X, y)

    weight64, bias64 = hmd._front_weight_, hmd._front_bias_
    Z64 = hmd._transform(X)
    hmd.compile(mode="float32")
    weight32, bias32 = hmd._front_weight_, hmd._front_bias_
    Z32 = hmd._transform(X)
    assert weight32.dtype == np.float32 and Z32.dtype == np.float32

    # Drift gate: each narrowed feature stays within 1e-6 of that
    # column's float64 magnitude (a per-column scale, not element-wise:
    # a feature's tolerance should not shrink to nothing on the rows
    # where it happens to pass near zero).
    col_scale = np.maximum(1.0, np.abs(Z64).max(axis=0))
    drift = float(np.max(np.abs(Z32.astype(np.float64) - Z64) / col_scale))

    # Throughput: the PublishedHmd fused-front expression over
    # arena-resident windows — the shm ring already holds each dtype's
    # native rows, so each side consumes its own precision end to end.
    probe64 = rng.normal(size=(16_384, N_FEATURES))
    probe32 = probe64.astype(np.float32)

    def front(weight, bias, batch):
        return np.asarray(batch, dtype=weight.dtype) @ weight + bias

    f64_sec, f32_sec = np.inf, np.inf
    for _ in range(REPEATS):
        f64_sec = min(
            f64_sec, _batched(lambda b: front(weight64, bias64, b), probe64)
        )
        f32_sec = min(
            f32_sec, _batched(lambda b: front(weight32, bias32, b), probe32)
        )
    speedup = f64_sec / f32_sec

    print(
        f"\nfloat32 front: {N_FEATURES} features -> {n_components} "
        f"components, batch={BATCH}, {len(probe64)} windows\n"
        f"  float64 front: {f64_sec * 1e3:8.2f} ms "
        f"({len(probe64) / f64_sec:9.0f} windows/sec)\n"
        f"  float32 front: {f32_sec * 1e3:8.2f} ms "
        f"({len(probe32) / f32_sec:9.0f} windows/sec)\n"
        f"  speedup: {speedup:.2f}x   drift: {drift:.2e}"
    )
    _results["float32_front"] = {
        "n_features": N_FEATURES,
        "n_components": n_components,
        "batch_size": BATCH,
        "n_windows": len(probe64),
        "float64_sec": f64_sec,
        "float32_sec": f32_sec,
        "speedup": speedup,
        "max_drift": drift,
    }

    assert drift <= 1e-6, f"float32 front drift {drift:.2e}"
    assert speedup >= 1.3, f"float32 front only {speedup:.2f}x"


def test_bench_fig5_verdict_parity():
    """Gate: the fig. 5 verdict pipeline (DVFS test/unknown entropy +
    accept decisions) is unchanged under the float32 front."""
    dataset = build_dvfs_dataset(seed=7, scale=0.5)
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=100, random_state=7),
        threshold=0.40,
        n_components=8,
    ).fit(dataset.train.X, dataset.train.y)

    reference = {
        split: hmd.analyze(X)
        for split, X in (("test", dataset.test.X), ("unknown", dataset.unknown.X))
    }
    hmd.compile(mode="float32")
    parity = {}
    for split, X in (("test", dataset.test.X), ("unknown", dataset.unknown.X)):
        narrowed = hmd.analyze(X)
        parity[split] = {
            "predictions_equal": bool(
                np.array_equal(narrowed.predictions, reference[split].predictions)
            ),
            "entropy_equal": bool(
                np.array_equal(narrowed.entropy, reference[split].entropy)
            ),
            "accepted_equal": bool(
                np.array_equal(narrowed.accepted, reference[split].accepted)
            ),
        }

    print(f"\nfig5 verdict parity (float32 vs float64): {parity}")
    _results["fig5_parity"] = parity
    for split, checks in parity.items():
        for name, equal in checks.items():
            assert equal, f"fig5 {split} {name.replace('_', ' ')} changed"


def teardown_module(module):
    """Persist whatever was measured, even on partial runs."""
    if _results:
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
        print(f"\nwrote {RESULTS_PATH}")
