"""Benchmark T1 — regenerate Table I (dataset taxonomy).

Builds both datasets at FULL scale and checks the sample counts match
the paper exactly (DVFS 2100/700/284, HPC 44605/6372/12727).
"""

from repro.data import (
    DVFS_TABLE1,
    HPC_TABLE1,
    build_dvfs_dataset,
    build_hpc_dataset,
    clear_dataset_cache,
)
from repro.experiments import ExperimentConfig, ExperimentContext, run_table1


def test_bench_table1_full_scale(benchmark):
    """Full-scale dataset generation reproduces Table I exactly."""

    def build():
        clear_dataset_cache()
        dvfs = build_dvfs_dataset(seed=7, scale=1.0)
        hpc = build_hpc_dataset(seed=7, scale=1.0)
        return dvfs, hpc

    dvfs, hpc = benchmark.pedantic(build, rounds=1, iterations=1)
    assert dvfs.taxonomy() == DVFS_TABLE1
    assert hpc.taxonomy() == HPC_TABLE1
    context = ExperimentContext(ExperimentConfig(dvfs_scale=1.0, hpc_scale=1.0))
    result = run_table1(context=context)
    assert result.matches_paper()
    print()
    print(result.as_text())
