"""Micro-benchmarks of the substrates (timing-focused).

These are classic pytest-benchmark measurements (multiple rounds) of
the hot paths: simulator throughput, tree/forest training, entropy
computation.  They guard against performance regressions in the layers
every experiment depends on.
"""

import numpy as np
import pytest

from repro.hmd import DvfsFeatureExtractor, HpcFeatureExtractor
from repro.hmd.apps import DVFS_KNOWN_BENIGN
from repro.ml import DecisionTreeClassifier, LogisticRegression, RandomForestClassifier
from repro.sim import HpcSimulator, SocSimulator, WorkloadGenerator
from repro.uncertainty import shannon_entropy, votes_to_distribution
from tests.conftest import make_blobs


@pytest.fixture(scope="module")
def activity_trace():
    spec = DVFS_KNOWN_BENIGN[0]
    return WorkloadGenerator(random_state=0).generate(spec, 2400)


@pytest.fixture(scope="module")
def training_data():
    return make_blobs(n_per_class=1000, n_features=16, separation=1.5, seed=0)


def test_bench_workload_generation(benchmark):
    """Activity-trace generation throughput (2400 steps = 2 min)."""
    spec = DVFS_KNOWN_BENIGN[0]
    generator = WorkloadGenerator(random_state=1)
    trace = benchmark(lambda: generator.generate(spec, 2400))
    assert trace.n_steps == 2400


def test_bench_dvfs_simulator(benchmark, activity_trace):
    """Governor + thermal simulation throughput."""
    simulator = SocSimulator(random_state=0)
    trace = benchmark(lambda: simulator.run(activity_trace))
    assert trace.n_steps == activity_trace.n_steps


def test_bench_hpc_simulator(benchmark, activity_trace):
    """Counter-model throughput (vectorised path)."""
    simulator = HpcSimulator(random_state=0)
    trace = benchmark(lambda: simulator.run(activity_trace))
    assert trace.n_intervals > 0


def test_bench_dvfs_feature_extraction(benchmark, activity_trace):
    """Window feature extraction over a 10-window trace."""
    dvfs = SocSimulator(random_state=0).run(activity_trace)
    extractor = DvfsFeatureExtractor()
    X = benchmark(lambda: extractor.extract_windows(dvfs, 240))
    assert X.shape[0] == 10


def test_bench_hpc_feature_extraction(benchmark, activity_trace):
    """Per-interval feature extraction throughput."""
    hpc = HpcSimulator(random_state=0).run(activity_trace)
    extractor = HpcFeatureExtractor()
    X = benchmark(lambda: extractor.extract(hpc))
    assert X.shape[0] == hpc.n_intervals


def test_bench_tree_fit(benchmark, training_data):
    """CART training on 2000 x 16."""
    X, y = training_data
    tree = benchmark(
        lambda: DecisionTreeClassifier(max_depth=12, random_state=0).fit(X, y)
    )
    assert tree.tree_.node_count > 1


def test_bench_forest_fit(benchmark, training_data):
    """Random-forest training (20 trees) on 2000 x 16."""
    X, y = training_data
    forest = benchmark.pedantic(
        lambda: RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y),
        rounds=3,
        iterations=1,
    )
    assert len(forest.estimators_) == 20


def test_bench_forest_predict(benchmark, training_data):
    """Vectorised vote collection across a 20-tree forest."""
    X, y = training_data
    forest = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
    votes = benchmark(lambda: forest.decisions(X))
    assert votes.shape == (len(X), 20)


def test_bench_logistic_fit(benchmark, training_data):
    """L-BFGS logistic regression on 2000 x 16."""
    X, y = training_data
    model = benchmark(lambda: LogisticRegression().fit(X, y))
    assert model.coef_.shape == (1, 16)


def test_bench_entropy_pipeline(benchmark):
    """Vote-distribution + entropy on 100k x 100 votes."""
    rng = np.random.default_rng(0)
    votes = rng.integers(0, 2, size=(100_000, 100))
    classes = np.array([0, 1])

    def compute():
        dist = votes_to_distribution(votes, classes)
        return shannon_entropy(dist)

    entropy = benchmark(compute)
    assert entropy.shape == (100_000,)
