"""Benchmark: the vectorized simulator backend vs. the per-step reference.

Acceptance criteria of the batched simulation subsystem:

* the fleet-scale **DVFS signature stage** — activity windows in, DVFS
  governor/thermal simulation, windowed feature extraction out — must
  run at least **10x** the per-window reference path over a ≥ 48-device
  fleet workload, with **bitwise identical** states, temperatures and
  feature rows;
* a **million-window dataset build** (activity generation → DVFS
  simulation → features, chunked through the batched kernels) must
  complete, producing one finite feature row per window;
* the remaining batched stages (fleet activity generation, HPC counter
  synthesis) stay bitwise identical to their references; their speedups
  are reported as context.  They share the reference's sequential RNG
  draws — which *is* most of their reference cost — so their headroom
  is structurally bounded and they carry no 10x gate.

Measured numbers are printed and written to ``BENCH_sim.json``
(uploaded as a CI artifact by the ``bench-sim`` job).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN
from repro.hmd.features import DvfsFeatureExtractor
from repro.sim import (
    ActivityBatch,
    FleetPopulation,
    FleetTraceGenerator,
    HpcSimulator,
    SocSimulator,
)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"
_results: dict = {}

N_DEVICES = 48
ROUNDS = 20
WINDOW_STEPS = 240
REPEATS = 4

MILLION = 1_000_000
BUILD_WINDOW_STEPS = 40
BUILD_CHUNK = 25_000


@pytest.fixture(scope="module")
def fleet_batch():
    """One contiguous fleet workload tensor: 48 devices x 20 rounds."""
    population = FleetPopulation(
        DVFS_KNOWN_BENIGN,
        DVFS_KNOWN_MALWARE,
        DVFS_UNKNOWN,
        malware_fraction=0.08,
        zero_day_fraction=0.05,
        random_state=7,
    )
    fleet = FleetTraceGenerator(population.sample(N_DEVICES), random_state=7)
    windows = [
        batch.window(i)
        for _, batch in fleet.stream_batch(ROUNDS, WINDOW_STEPS)
        for i in range(batch.n_windows)
    ]
    return ActivityBatch.from_traces(windows)


def test_bench_dvfs_signature_stage(fleet_batch):
    """Gate: batched DVFS simulation + featurization >= 10x, bitwise."""
    extractor = DvfsFeatureExtractor()
    n = fleet_batch.n_windows
    assert n == N_DEVICES * ROUNDS

    reference_elapsed, batched_elapsed = np.inf, np.inf
    X_ref = X_fast = None
    states_ref = states_fast = None
    temps_ref = temps_fast = None
    # Interleave the repeats so host noise hits both paths alike and
    # take the best of each (same discipline as the other benches).
    for _ in range(REPEATS):
        soc = SocSimulator(random_state=11)
        t0 = time.perf_counter()
        traces = [soc.run_reference(w) for w in fleet_batch.windows()]
        rows = [extractor.extract(trace) for trace in traces]
        elapsed = time.perf_counter() - t0
        reference_elapsed = min(reference_elapsed, elapsed)
        X_ref = np.stack(rows)
        states_ref = np.stack([t.states for t in traces])
        temps_ref = np.stack([t.temperature_c for t in traces])

        soc = SocSimulator(random_state=11)
        t0 = time.perf_counter()
        dvfs = soc.run_batch(fleet_batch)
        X_fast = extractor.extract_windows(dvfs.as_trace(), WINDOW_STEPS)
        elapsed = time.perf_counter() - t0
        batched_elapsed = min(batched_elapsed, elapsed)
        states_fast = dvfs.states
        temps_fast = dvfs.temperature_c

    speedup = reference_elapsed / batched_elapsed
    states_identical = np.array_equal(states_ref, states_fast)
    temps_identical = np.array_equal(temps_ref, temps_fast)
    features_identical = np.array_equal(X_ref, X_fast)
    print(
        f"\ndvfs signature stage: {N_DEVICES} devices x {ROUNDS} rounds "
        f"({n} windows of {WINDOW_STEPS} steps)\n"
        f"  reference: {reference_elapsed * 1e3:8.1f} ms "
        f"({reference_elapsed / n * 1e6:7.1f} us/window)\n"
        f"  batched  : {batched_elapsed * 1e3:8.1f} ms "
        f"({batched_elapsed / n * 1e6:7.1f} us/window)\n"
        f"  speedup  : {speedup:8.1f}x   states identical: {states_identical}"
        f"   temps identical: {temps_identical}"
        f"   features identical: {features_identical}"
    )
    _results["dvfs_signature_stage"] = {
        "n_devices": N_DEVICES,
        "n_windows": n,
        "window_steps": WINDOW_STEPS,
        "reference_sec": reference_elapsed,
        "batched_sec": batched_elapsed,
        "reference_wps": n / reference_elapsed,
        "batched_wps": n / batched_elapsed,
        "speedup": speedup,
        "states_identical": states_identical,
        "temps_identical": temps_identical,
        "features_identical": features_identical,
    }

    assert states_identical, "batched DVFS states drifted from the reference"
    assert temps_identical, "batched temperatures drifted from the reference"
    assert features_identical, "batched features drifted from the reference"
    assert speedup >= 10.0, f"dvfs signature stage only {speedup:.1f}x"


def test_bench_generation_and_hpc_context(fleet_batch):
    """Context rows: fleet generation and HPC synthesis, bitwise-gated.

    Both stages spend most of their reference time in the sequential
    RNG draws the bitwise contract forces the batched path to replay,
    so only modest speedups are structurally possible; they are
    reported, not gated at 10x.
    """
    # -- fleet activity generation ------------------------------------
    population = FleetPopulation(
        DVFS_KNOWN_BENIGN,
        DVFS_KNOWN_MALWARE,
        DVFS_UNKNOWN,
        malware_fraction=0.08,
        zero_day_fraction=0.05,
        random_state=3,
    )
    devices = population.sample(N_DEVICES)
    rounds = 6

    reference_elapsed, batched_elapsed = np.inf, np.inf
    reference_events = batched_events = None
    for _ in range(REPEATS):
        fleet = FleetTraceGenerator(devices, random_state=3)
        t0 = time.perf_counter()
        reference_events = list(fleet.stream_reference(rounds, WINDOW_STEPS))
        reference_elapsed = min(reference_elapsed, time.perf_counter() - t0)

        fleet = FleetTraceGenerator(devices, random_state=3)
        t0 = time.perf_counter()
        batched_events = list(fleet.stream_batch(rounds, WINDOW_STEPS))
        batched_elapsed = min(batched_elapsed, time.perf_counter() - t0)

    flat = [
        (device, batch.window(i))
        for emitting, batch in batched_events
        for i, device in enumerate(emitting)
    ]
    generation_identical = len(flat) == len(reference_events) and all(
        fd.device_id == sd.device_id
        and np.array_equal(ft.cpu_demand, st.cpu_demand)
        and np.array_equal(ft.phase_id, st.phase_id)
        for (sd, st), (fd, ft) in zip(reference_events, flat)
    )
    generation_speedup = reference_elapsed / batched_elapsed
    n_gen = len(reference_events)
    print(
        f"\nfleet generation: {N_DEVICES} devices x {rounds} rounds\n"
        f"  reference: {reference_elapsed * 1e3:8.1f} ms   "
        f"batched: {batched_elapsed * 1e3:8.1f} ms   "
        f"speedup: {generation_speedup:.2f}x   "
        f"identical: {generation_identical}"
    )
    _results["fleet_generation"] = {
        "n_devices": N_DEVICES,
        "n_windows": n_gen,
        "reference_sec": reference_elapsed,
        "batched_sec": batched_elapsed,
        "speedup": generation_speedup,
        "traces_identical": generation_identical,
    }

    # -- HPC counter synthesis ----------------------------------------
    reference_elapsed, batched_elapsed = np.inf, np.inf
    counters_ref = counters_fast = None
    for _ in range(REPEATS):
        hpc = HpcSimulator(random_state=5)
        t0 = time.perf_counter()
        counters_ref = np.stack(
            [hpc.run_reference(w).counters for w in fleet_batch.windows()]
        )
        reference_elapsed = min(reference_elapsed, time.perf_counter() - t0)

        hpc = HpcSimulator(random_state=5)
        t0 = time.perf_counter()
        counters_fast = hpc.run_batch(fleet_batch).counters
        batched_elapsed = min(batched_elapsed, time.perf_counter() - t0)

    hpc_identical = np.array_equal(counters_ref, counters_fast)
    hpc_speedup = reference_elapsed / batched_elapsed
    print(
        f"hpc synthesis: {fleet_batch.n_windows} windows\n"
        f"  reference: {reference_elapsed * 1e3:8.1f} ms   "
        f"batched: {batched_elapsed * 1e3:8.1f} ms   "
        f"speedup: {hpc_speedup:.2f}x   identical: {hpc_identical}"
    )
    _results["hpc_synthesis"] = {
        "n_windows": fleet_batch.n_windows,
        "reference_sec": reference_elapsed,
        "batched_sec": batched_elapsed,
        "speedup": hpc_speedup,
        "counters_identical": hpc_identical,
    }

    assert generation_identical, "batched fleet stream drifted from reference"
    assert hpc_identical, "batched HPC counters drifted from reference"


def test_bench_million_window_build():
    """Gate: a million-window training corpus builds end to end."""
    specs = list(DVFS_KNOWN_BENIGN) + list(DVFS_KNOWN_MALWARE)
    from repro.sim import WorkloadGenerator

    generator = WorkloadGenerator(random_state=0)
    soc = SocSimulator(random_state=1)
    extractor = DvfsFeatureExtractor()

    X = None
    y = np.empty(MILLION, dtype=np.int8)
    n_chunks = MILLION // BUILD_CHUNK
    t0 = time.perf_counter()
    for chunk in range(n_chunks):
        spec = specs[chunk % len(specs)]
        activity = generator.generate_batch(spec, BUILD_CHUNK, BUILD_WINDOW_STEPS)
        dvfs = soc.run_batch(activity)
        rows = extractor.extract_windows(dvfs.as_trace(), BUILD_WINDOW_STEPS)
        if X is None:
            X = np.empty((MILLION, rows.shape[1]), dtype=np.float32)
        start = chunk * BUILD_CHUNK
        X[start : start + BUILD_CHUNK] = rows
        y[start : start + BUILD_CHUNK] = spec.label
    elapsed = time.perf_counter() - t0

    wps = MILLION / elapsed
    print(
        f"\nmillion-window build: {MILLION} windows of {BUILD_WINDOW_STEPS} "
        f"steps in {elapsed:.1f} s ({wps:,.0f} windows/sec), "
        f"X {X.shape} {X.dtype} ({X.nbytes / 1e6:.0f} MB)"
    )
    _results["million_window_build"] = {
        "n_windows": MILLION,
        "window_steps": BUILD_WINDOW_STEPS,
        "chunk_windows": BUILD_CHUNK,
        "elapsed_sec": elapsed,
        "windows_per_sec": wps,
        "n_features": int(X.shape[1]),
        "feature_mb": X.nbytes / 1e6,
    }

    assert X.shape[0] == MILLION
    assert np.isfinite(X[:: MILLION // 997]).all()  # finite on a stride sample
    assert 0 < y.sum() < MILLION  # both classes present


def teardown_module(module):
    """Persist whatever was measured, even on partial runs."""
    if _results:
        RESULTS_PATH.write_text(json.dumps(_results, indent=2) + "\n")
        print(f"\nwrote {RESULTS_PATH}")
