"""Online uncertainty-aware monitoring with analyst-in-the-loop retraining.

Simulates the deployment loop the paper's introduction sketches:

* a phone runs a mix of known apps — the Trusted HMD screens each
  signature window and raises alerts for confident malware detections;
* a zero-day banking trojan appears — its windows are flagged as
  *uncertain* (not silently classified) and queued for forensics;
* the analyst labels the queued samples and the HMD retrains, after
  which the trojan is detected confidently.

    python examples/online_monitor.py
"""

import numpy as np

from repro.data import build_dvfs_dataset
from repro.ml import RandomForestClassifier
from repro.uncertainty import ForensicQueue, OnlineMonitor, RetrainingLoop, TrustedHMD

SCALE = 0.25
THRESHOLD = 0.40


def main() -> None:
    rng = np.random.default_rng(7)
    dataset = build_dvfs_dataset(seed=7, scale=SCALE)

    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=80, random_state=7),
        threshold=THRESHOLD,
    ).fit(dataset.train.X, dataset.train.y)

    monitor = OnlineMonitor(hmd, queue=ForensicQueue(maxlen=5000))

    # --- phase 1: normal traffic (known apps only) ----------------------
    print("Phase 1 — normal traffic (known applications)")
    monitor.observe(dataset.test.X)
    stats = monitor.stats
    print(f"  seen={stats.n_seen}  flagged={stats.n_flagged} "
          f"({stats.rejection_rate:.1%})  malware alerts={stats.n_malware_alerts}")
    # The analyst reviews phase-1 flags and confirms they are benign
    # borderline cases; they are drained without becoming new classes.
    monitor.queue.drain()

    # --- phase 2: a zero-day trojan infects the device -------------------
    print("\nPhase 2 — zero-day banking trojan active")
    # Several sessions of the trojan family produce repeated sightings.
    trojan_batches = [
        build_dvfs_dataset(seed=seed, scale=SCALE) for seed in (7, 9, 11)
    ]
    X_trojan = np.vstack([
        ds.unknown.X[ds.unknown.apps == "banking_trojan"] for ds in trojan_batches
    ])
    before = hmd.predictive_entropy(X_trojan).mean()
    monitor.observe(X_trojan)
    print(f"  trojan windows seen={len(X_trojan)}  "
          f"queued for forensics={len(monitor.queue)}  "
          f"mean entropy={before:.3f}")

    # --- phase 3: analyst labels the queue, HMD retrains ------------------
    print("\nPhase 3 — analyst labels forensic queue, model retrains")
    flagged = monitor.queue.drain()
    analyst_labels = np.ones(len(flagged), dtype=int)  # confirmed malware
    loop = RetrainingLoop(hmd, dataset.train.X, dataset.train.y, min_batch=10)
    retrained = loop.incorporate(flagged, analyst_labels)
    print(f"  labelled={len(flagged)}  retrained={retrained}")

    # --- phase 4: the trojan returns — now detected confidently ----------
    print("\nPhase 4 — trojan traffic after retraining")
    # Fresh trojan windows (different sessions of the same family).
    fresh = build_dvfs_dataset(seed=13, scale=SCALE)
    fresh_trojan = fresh.unknown.X[fresh.unknown.apps == "banking_trojan"]
    verdict = hmd.analyze(fresh_trojan)
    confident_malware = np.mean(verdict.accepted & (verdict.predictions == 1))
    print(f"  mean entropy {before:.3f} -> {verdict.entropy.mean():.3f}")
    print(f"  confidently detected as malware: {confident_malware:.1%}")


if __name__ == "__main__":
    main()
