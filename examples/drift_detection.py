"""Detect dataset shift from the online entropy stream.

Section II.B of the paper motivates uncertainty with dataset shift:
deployed models silently degrade when the data distribution moves.
This example shows the operational counterpart: an
:class:`EntropyDriftMonitor` watches the Trusted HMD's entropy stream
and escalates stable → warning → drift as a zero-day campaign ramps up.

    python examples/drift_detection.py
"""

import numpy as np

from repro.data import build_dvfs_dataset
from repro.ml import RandomForestClassifier
from repro.uncertainty import EntropyDriftMonitor, TrustedHMD

SCALE = 0.25


def main() -> None:
    rng = np.random.default_rng(7)
    dataset = build_dvfs_dataset(seed=7, scale=SCALE)

    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=80, random_state=7),
        threshold=0.40,
    ).fit(dataset.train.X, dataset.train.y)

    # Calibrate the monitor on held-out KNOWN entropies.
    reference = hmd.predictive_entropy(dataset.test.X)
    monitor = EntropyDriftMonitor(reference, window=30)
    print(f"Reference regime: mean entropy {reference.mean():.3f} "
          f"(warning level {monitor.warning_level:.3f})")

    unknown_entropy = hmd.predictive_entropy(dataset.unknown.X)
    known_entropy = reference.copy()
    rng.shuffle(known_entropy)

    # Traffic timeline: known-only, then increasing fractions of
    # zero-day workloads mixed in.
    phases = [
        ("clean traffic", 0.0),
        ("5% zero-day", 0.05),
        ("25% zero-day", 0.25),
        ("campaign peak (70% zero-day)", 0.70),
    ]
    print(f"\n{'phase':32s} {'recent mean':>12s} {'PH stat':>9s} status")
    for label, mix in phases:
        batch = []
        for _ in range(60):
            if rng.random() < mix:
                batch.append(unknown_entropy[rng.integers(len(unknown_entropy))])
            else:
                batch.append(known_entropy[rng.integers(len(known_entropy))])
        state = monitor.observe(np.array(batch))
        print(f"{label:32s} {state.recent_mean:12.3f} "
              f"{state.ph_statistic:9.2f} {state.status.upper()}")

    print("\nOn a DRIFT signal the operator freezes auto-decisions, pulls")
    print("the forensic queue, and schedules retraining (see")
    print("examples/online_monitor.py for that loop).")


if __name__ == "__main__":
    main()
