"""Build a million-window DVFS training corpus on the batched backend.

Chains the vectorized simulator stages end to end — batched workload
generation (`WorkloadGenerator.generate_batch`), whole-tensor DVFS
simulation (`SocSimulator.run_batch`), and batched feature extraction
(`DvfsFeatureExtractor.extract_windows`) — in fixed-size chunks, so the
peak memory stays at one chunk of traces while the finished corpus
accumulates as float32 feature rows.

Every chunk is bitwise identical to what the per-window reference path
(`generate` → `run_reference` → `extract`) would produce from the same
seeds; `benchmarks/test_bench_sim.py` gates exactly that while timing
the same build at full scale.

    python examples/million_window_build.py            # 1M windows
    python examples/million_window_build.py 50000      # smaller demo
"""

import sys
import time

import numpy as np

from repro.hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE
from repro.hmd.features import DvfsFeatureExtractor
from repro.sim import SocSimulator, WorkloadGenerator

WINDOW_STEPS = 40
CHUNK_WINDOWS = 25_000


def build(n_windows: int, *, seed: int = 0):
    """Chunked corpus build; returns (X float32, y int8, elapsed_sec)."""
    # Alternate the pools so even small builds contain both classes.
    benign, malware = list(DVFS_KNOWN_BENIGN), list(DVFS_KNOWN_MALWARE)
    specs = [
        pool[(i // 2) % len(pool)]
        for i, pool in enumerate([benign, malware] * max(len(benign), len(malware)))
    ]
    generator = WorkloadGenerator(random_state=seed)
    soc = SocSimulator(random_state=seed + 1)
    extractor = DvfsFeatureExtractor()

    X = None
    y = np.empty(n_windows, dtype=np.int8)
    done = 0
    t0 = time.perf_counter()
    for chunk in range(-(-n_windows // CHUNK_WINDOWS)):
        spec = specs[chunk % len(specs)]
        take = min(CHUNK_WINDOWS, n_windows - done)
        activity = generator.generate_batch(spec, take, WINDOW_STEPS)
        dvfs = soc.run_batch(activity)
        rows = extractor.extract_windows(dvfs.as_trace(), WINDOW_STEPS)
        if X is None:
            X = np.empty((n_windows, rows.shape[1]), dtype=np.float32)
        X[done : done + take] = rows
        y[done : done + take] = spec.label
        done += take
        if chunk % 5 == 4:
            rate = done / (time.perf_counter() - t0)
            print(f"  {done:>9,} / {n_windows:,} windows ({rate:,.0f}/sec)")
    return X, y, time.perf_counter() - t0


def main() -> None:
    n_windows = int(sys.argv[1]) if len(sys.argv) > 1 else 1_000_000
    print(
        f"building {n_windows:,} windows of {WINDOW_STEPS} steps "
        f"in chunks of {CHUNK_WINDOWS:,} ..."
    )
    X, y, elapsed = build(n_windows)
    print(
        f"done: X {X.shape} {X.dtype} ({X.nbytes / 1e6:.0f} MB), "
        f"{int(y.sum()):,} malware rows, {elapsed:.1f} s "
        f"({n_windows / elapsed:,.0f} windows/sec)"
    )


if __name__ == "__main__":
    main()
