"""Raw trace → verdict: the batched ingest front end to end.

The other fleet examples submit pre-featurised windows.  This one walks
the full front the monitor pays per device check-in:

* each device uploads a raw multi-window DVFS trace (governor states +
  die temperature);
* ONE whole-tensor ``extract_windows`` pass turns the trace into the
  window feature matrix (residency histograms via offset-bincount,
  batched FFT spectral bands, run-length dwell stats — no per-window
  Python);
* ONE ``submit_many`` call lands the matrix in the fleet queue as a
  zero-copy block;
* the fleet monitor screens fixed-size batches with the compiled vote
  path and routes flagged windows to forensics.

    python examples/trace_ingest.py
"""

import time

import numpy as np

from repro.data import build_dvfs_dataset
from repro.fleet import BackpressurePolicy, FleetMonitor
from repro.hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN
from repro.hmd.features import DvfsFeatureExtractor
from repro.ml import RandomForestClassifier
from repro.sim import FleetPopulation, SocSimulator, WorkloadGenerator
from repro.uncertainty import TrustedHMD

SCALE = 0.25
N_DEVICES = 24
WINDOWS_PER_DEVICE = 6
WINDOW_STEPS = 240


def main() -> None:
    dataset = build_dvfs_dataset(seed=7, scale=SCALE)
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=60, random_state=7),
        threshold=0.40,
    ).fit(dataset.train.X, dataset.train.y)

    population = FleetPopulation(
        DVFS_KNOWN_BENIGN,
        DVFS_KNOWN_MALWARE,
        DVFS_UNKNOWN,
        malware_fraction=0.12,
        zero_day_fraction=0.08,
        random_state=7,
    )
    devices = population.sample(N_DEVICES)

    # Each device uploads one raw trace covering several windows.
    print(f"Simulating {N_DEVICES} device traces "
          f"({WINDOWS_PER_DEVICE} windows x {WINDOW_STEPS} steps each) ...")
    uploads = []
    for d, device in enumerate(devices):
        generator = WorkloadGenerator(dt=0.05, random_state=700 + d)
        activity = generator.generate(
            device.spec, WINDOWS_PER_DEVICE * WINDOW_STEPS
        )
        uploads.append((device, SocSimulator(random_state=8).run(activity)))

    monitor = FleetMonitor(
        hmd,
        batch_size=128,
        policy=BackpressurePolicy(max_pending=4096),
    )
    extractor = DvfsFeatureExtractor()

    t0 = time.perf_counter()
    for device, trace in uploads:
        monitor.register(device.device_id, cohort=device.cohort)
        X = extractor.extract_windows(trace, WINDOW_STEPS)   # one tensor pass
        monitor.submit_many(device.device_id, X)             # one block enqueue
    batches = monitor.drain()
    elapsed = time.perf_counter() - t0

    n_windows = N_DEVICES * WINDOWS_PER_DEVICE
    print(f"\n{n_windows} windows: trace -> features -> verdict in "
          f"{elapsed * 1e3:.0f} ms ({n_windows / elapsed:,.0f} windows/sec, "
          f"{len(batches)} batches)")

    report = monitor.report()
    print()
    print(report.as_text(max_rows=10))

    flagged = monitor.forensics.drain()
    if flagged:
        by_device: dict[str, int] = {}
        for sample in flagged:
            by_device[sample.device_id] = by_device.get(sample.device_id, 0) + 1
        print("\nFlagged windows routed to forensics:")
        cohorts = {d.device_id: d.cohort for d in devices}
        for device_id, count in sorted(by_device.items(), key=lambda kv: -kv[1]):
            print(f"  {device_id}  cohort={cohorts[device_id]}  "
                  f"windows={count}")


if __name__ == "__main__":
    main()
