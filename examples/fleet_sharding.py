"""Horizontally sharded fleet: K monitor cores, one merged view.

Extends examples/fleet_monitor.py from one monitor core to a sharded
deployment, the way large DAQ systems fan out their readout:

* a device-hash router pins each of 96 devices to one of 4 shards;
* every shard runs its own FleetMonitor (queue, device table, forensic
  stream) but all shards share ONE read-only compiled HMD — a warm
  retrain republishes to every core at the next round;
* the facade keeps the single-monitor API: the submit/drain/report
  calls below are exactly the ones fleet_monitor.py makes, and the
  verdicts are bitwise identical to the unsharded path;
* mid-stream the whole fleet is checkpointed with snapshot(), restored
  from the pickled bytes, and resumes with identical verdicts;
* finally the fleet is rebalanced from 4 to 6 shards live — device
  states and queued backlogs migrate, verdicts don't change.

    python examples/fleet_sharding.py
"""

import pickle

from repro.data import build_dvfs_dataset
from repro.fleet import FleetMonitor, FleetWindowSampler, ShardedFleetMonitor
from repro.fleet.engine import batch_verdict_key
from repro.hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN
from repro.ml import RandomForestClassifier
from repro.sim import FleetPopulation
from repro.uncertainty import TrustedHMD

SCALE = 0.25
N_DEVICES = 96
N_SHARDS = 4
ROUNDS = 20


def main() -> None:
    dataset = build_dvfs_dataset(seed=7, scale=SCALE)
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=60, random_state=7),
        threshold=0.40,
    ).fit(dataset.train.X, dataset.train.y)

    population = FleetPopulation(
        DVFS_KNOWN_BENIGN,
        DVFS_KNOWN_MALWARE,
        DVFS_UNKNOWN,
        malware_fraction=0.10,
        zero_day_fraction=0.05,
        random_state=7,
    )
    devices = population.sample(N_DEVICES)
    sampler = FleetWindowSampler(dataset, devices, random_state=7)
    arrivals = list(sampler.rounds(ROUNDS))

    # -- sharded vs. unsharded: same calls, same verdicts --------------
    fleet = ShardedFleetMonitor(hmd, n_shards=N_SHARDS, batch_size=256)
    fleet.register_fleet(devices)
    for device_id, window in arrivals[: len(arrivals) // 2]:
        fleet.submit(device_id, window)
    first_half = fleet.drain()

    per_shard = {
        shard.shard_id: len(shard.monitor.devices) for shard in fleet.shards
    }
    print(f"{N_DEVICES} devices routed across {N_SHARDS} shards: {per_shard}")
    print(
        f"first half drained: {sum(len(b) for b in first_half)} windows in "
        f"{len(first_half)} fused rounds, {len(fleet.forensics)} flagged\n"
    )

    # -- checkpoint the live fleet, restore it, keep going -------------
    blob = pickle.dumps(fleet.snapshot())
    print(f"snapshot: {len(blob)} bytes (queues, device states, forensics)")
    restored = ShardedFleetMonitor.restore(hmd, pickle.loads(blob))

    for monitor in (fleet, restored):
        for device_id, window in arrivals[len(arrivals) // 2 :]:
            monitor.submit(device_id, window)
    tail = fleet.drain()
    tail_restored = restored.drain()
    print(
        "restored fleet resumes identically: "
        f"{batch_verdict_key(tail_restored) == batch_verdict_key(tail)}\n"
    )

    # -- the sharded path never changes a verdict ----------------------
    single = FleetMonitor(hmd, batch_size=256)
    single.register_fleet(devices)
    for device_id, window in arrivals:
        single.submit(device_id, window)
    reference = single.drain()
    print(
        "sharded verdicts bitwise-identical to one FleetMonitor: "
        f"{batch_verdict_key(first_half + tail) == batch_verdict_key(reference)}\n"
    )

    # -- live rebalance: 4 -> 6 shards ---------------------------------
    plan = restored.rebalance(6)
    print(
        f"rebalanced to 6 shards: {len(plan)} of {N_DEVICES} devices moved "
        "(deterministic hash map)"
    )

    print("\n" + fleet.report().as_text(max_rows=8))


if __name__ == "__main__":
    main()
