"""Audit an HMD sensor/dataset for data (aleatoric) uncertainty.

The paper's second case study (Section V.B) is a *negative* result: the
HPC dataset's benign and malware classes overlap, so even in-distribution
predictions are uncertain and the dataset "cannot be used to train a
trustworthy ML model".  This example shows the audit workflow a
practitioner would run before deploying an HMD:

1. estimate predictive entropy on held-out KNOWN data;
2. decompose it into aleatoric vs. epistemic components;
3. quantify the class geometry (neighbourhood purity / overlap);
4. decide whether rejection can salvage precision.

    python examples/hpc_overlap_audit.py
"""

import numpy as np

from repro.data import build_dvfs_dataset, build_hpc_dataset
from repro.experiments import format_table
from repro.ml import RandomForestClassifier, StandardScaler
from repro.ml.metrics import f1_score, neighborhood_purity
from repro.uncertainty import (
    EnsembleUncertaintyEstimator,
    decompose_uncertainty,
    f1_vs_threshold,
)

HPC_SCALE = 0.05
DVFS_SCALE = 0.25


def audit(name: str, dataset) -> dict:
    """Run the trustworthiness audit on one dataset; returns key stats."""
    scaler = StandardScaler().fit(dataset.train.X)
    X_train = scaler.transform(dataset.train.X)
    X_test = scaler.transform(dataset.test.X)

    ensemble = RandomForestClassifier(n_estimators=60, random_state=7)
    ensemble.fit(X_train, dataset.train.y)
    estimator = EnsembleUncertaintyEstimator(ensemble)
    entropy_known = estimator.predictive_entropy(X_test)

    smoothed = RandomForestClassifier(
        n_estimators=40, min_samples_leaf=15, random_state=7
    ).fit(X_train, dataset.train.y)
    decomposition = decompose_uncertainty(smoothed, X_test)

    subsample = np.random.default_rng(0).choice(
        len(X_train), size=min(800, len(X_train)), replace=False
    )
    purity = neighborhood_purity(
        X_train[subsample], dataset.train.y[subsample], n_neighbors=10
    )

    preds = estimator.predict(X_test)
    baseline_f1 = f1_score(dataset.test.y, preds)
    sweep = f1_vs_threshold(
        dataset.test.y, preds, entropy_known, np.arange(0.1, 1.01, 0.1)
    )
    best = max((r for r in sweep if r["f1"] is not None), key=lambda r: r["f1"])

    return {
        "dataset": name,
        "known-entropy median": float(np.median(entropy_known)),
        "aleatoric (mean)": float(decomposition.aleatoric.mean()),
        "epistemic (mean)": float(decomposition.epistemic.mean()),
        "train purity": purity,
        "baseline F1": baseline_f1,
        "best F1 after rejection": best["f1"],
        "accepted at best": best["accepted_frac"],
    }


def main() -> None:
    reports = [
        audit("dvfs", build_dvfs_dataset(seed=7, scale=DVFS_SCALE)),
        audit("hpc", build_hpc_dataset(seed=7, scale=HPC_SCALE)),
    ]
    keys = [k for k in reports[0] if k != "dataset"]
    rows = [[k] + [round(r[k], 3) for r in reports] for k in keys]
    print(format_table(["metric", "dvfs", "hpc"], rows))

    hpc = reports[1]
    print("\nVerdict:")
    if hpc["known-entropy median"] > 0.4 and hpc["aleatoric (mean)"] > hpc["epistemic (mean)"]:
        print("  HPC: HIGH data uncertainty — overlapping classes. The")
        print("  sensor/dataset cannot train a trustworthy HMD (paper V.B);")
        print("  rejection recovers precision but discards most traffic "
              f"(keeps {hpc['accepted at best']:.0%}).")
    dvfs = reports[0]
    if dvfs["known-entropy median"] < 0.2:
        print("  DVFS: LOW data uncertainty — disjoint classes; suitable")
        print("  for deployment with an entropy-rejection guard.")


if __name__ == "__main__":
    main()
