"""Mimicry evasion attack vs the uncertainty-aware HMD.

An attacker pads ransomware's schedule with browser-like phases to
evade the DVFS detector (the adversarial-HMD threat model the paper's
related work cites).  The sweep shows the Trusted HMD's security story:
raw detection decays with stealth, but the blended behaviour looks like
*nothing in the training set*, so predictive entropy rises and the
rejection policy converts silent misses into analyst escalations.

    python examples/mimicry_attack.py
"""

from repro.experiments import (
    ExperimentConfig,
    ExperimentContext,
    run_evasion_ablation,
)
from repro.viz import ascii_line_chart

SCALE = 0.3


def main() -> None:
    context = ExperimentContext(
        ExperimentConfig(dvfs_scale=SCALE, n_estimators=80)
    )
    result = run_evasion_ablation(context=context, n_windows=50)
    print(result.as_text())

    stealth = [row[0] for row in result.rows_]
    detected = [row[1] for row in result.rows_]
    caught = [row[4] for row in result.rows_]
    print()
    print(ascii_line_chart(
        {
            "detected": (stealth, detected),
            "caught (det or flagged)": (stealth, caught),
        },
        width=52,
        height=12,
    ))

    print("\nReading: the gap between the two curves is the work the")
    print("uncertainty estimator does — mimicry windows stop being")
    print("*classified* as malware long before they stop being")
    print("*suspicious*. At extreme stealth the payload barely runs,")
    print("which is itself a win for the defender.")


if __name__ == "__main__":
    main()
