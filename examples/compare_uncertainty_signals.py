"""Compare uncertainty signals for zero-day detection (ablation demo).

Scores four per-sample signals as detectors of unknown workloads on the
DVFS dataset (higher AUC = better at separating never-seen apps from
known test traffic):

* ensemble vote entropy (the paper's estimator, Eq. 4);
* vote margin and variation ratio (classical ensemble statistics);
* 1 − Platt-scaled confidence of a single SVM (the related-work
  approach the paper argues against, Section II.E).

    python examples/compare_uncertainty_signals.py
"""

import numpy as np

from repro.data import build_dvfs_dataset
from repro.experiments import format_table
from repro.ml import CalibratedClassifier, LinearSVC, RandomForestClassifier, StandardScaler
from repro.ml.metrics import roc_auc_score
from repro.uncertainty import EnsembleUncertaintyEstimator

SCALE = 0.5


def detection_auc(score_known: np.ndarray, score_unknown: np.ndarray) -> float:
    """AUC of separating unknown (positive) from known inputs."""
    y = np.concatenate([np.zeros(len(score_known)), np.ones(len(score_unknown))])
    s = np.concatenate([score_known, score_unknown])
    return roc_auc_score(y, s)


def main() -> None:
    dataset = build_dvfs_dataset(seed=7, scale=SCALE)
    scaler = StandardScaler().fit(dataset.train.X)
    X_train = scaler.transform(dataset.train.X)
    X_test = scaler.transform(dataset.test.X)
    X_unknown = scaler.transform(dataset.unknown.X)

    ensemble = RandomForestClassifier(n_estimators=100, random_state=7)
    ensemble.fit(X_train, dataset.train.y)
    estimator = EnsembleUncertaintyEstimator(ensemble)

    report_known = estimator.report(X_test)
    report_unknown = estimator.report(X_unknown)

    platt = CalibratedClassifier(LinearSVC(max_iter=300), random_state=7)
    platt.fit(X_train, dataset.train.y)

    rows = [
        ["vote entropy (paper)",
         detection_auc(report_known.entropy, report_unknown.entropy)],
        ["variation ratio",
         detection_auc(report_known.variation_ratio, report_unknown.variation_ratio)],
        ["1 - vote margin",
         detection_auc(1 - report_known.margin, 1 - report_unknown.margin)],
        ["1 - Platt confidence (single SVM)",
         detection_auc(1 - platt.confidence(X_test), 1 - platt.confidence(X_unknown))],
    ]
    rows.sort(key=lambda r: -r[1])
    print(format_table(["uncertainty signal", "unknown-detection AUC"], rows))

    platt_conf_unknown = platt.confidence(X_unknown).mean()
    print(f"\nMean Platt confidence on NEVER-SEEN apps: {platt_conf_unknown:.3f}")
    print("High confidence on unknown inputs is exactly the failure mode")
    print("the paper warns about: a sigmoid point estimate is not model")
    print("uncertainty.")


if __name__ == "__main__":
    main()
