"""Zero-day malware detection with model (epistemic) uncertainty.

Reproduces the Section V.A scenario end-to-end: a DVFS-based HMD
trained on 14 known applications encounters four applications it has
never seen — including a new banking-trojan family.  Sweeping the
entropy threshold shows the accept/reject trade-off of Fig. 7a, and the
per-application report shows which unknown apps are hardest.

    python examples/dvfs_zero_day.py
"""

import numpy as np

from repro.data import build_dvfs_dataset
from repro.experiments import format_table
from repro.ml import RandomForestClassifier, StandardScaler
from repro.uncertainty import EnsembleUncertaintyEstimator, rejection_curve

SCALE = 0.5
THRESHOLDS = np.round(np.arange(0.0, 0.76, 0.05), 2)


def main() -> None:
    dataset = build_dvfs_dataset(seed=7, scale=SCALE)
    scaler = StandardScaler().fit(dataset.train.X)
    X_train = scaler.transform(dataset.train.X)
    X_test = scaler.transform(dataset.test.X)
    X_unknown = scaler.transform(dataset.unknown.X)

    ensemble = RandomForestClassifier(n_estimators=100, random_state=7)
    ensemble.fit(X_train, dataset.train.y)
    estimator = EnsembleUncertaintyEstimator(ensemble)

    entropy_known = estimator.predictive_entropy(X_test)
    entropy_unknown = estimator.predictive_entropy(X_unknown)

    # --- rejection trade-off (Fig. 7a style) ---------------------------
    curve_known = rejection_curve(entropy_known, THRESHOLDS)
    curve_unknown = rejection_curve(entropy_unknown, THRESHOLDS)
    rows = [
        [t, k, u] for t, k, u in zip(THRESHOLDS, curve_known, curve_unknown)
    ]
    print(format_table(
        ["entropy threshold", "known rejected (%)", "unknown rejected (%)"], rows
    ))

    # --- pick the operating point: max unknown detection at <=10% known
    budget_ok = curve_known <= 10.0
    best_idx = int(np.argmax(np.where(budget_ok, curve_unknown, -1.0)))
    t_star = THRESHOLDS[best_idx]
    print(f"\nOperating point: threshold={t_star:.2f} rejects "
          f"{curve_unknown[best_idx]:.1f}% of unknown workloads at "
          f"{curve_known[best_idx]:.1f}% known-workload cost.")

    # --- per-application breakdown -------------------------------------
    print("\nPer-application zero-day detection at the operating point:")
    rows = []
    for app in np.unique(dataset.unknown.apps):
        mask = dataset.unknown.apps == app
        detected = float(np.mean(entropy_unknown[mask] > t_star)) * 100.0
        label = "malware" if dataset.unknown.y[mask][0] == 1 else "benign"
        rows.append([app, label, f"{detected:.0f}%"])
    print(format_table(["unknown app", "true class", "flagged as unknown"], rows))


if __name__ == "__main__":
    main()
