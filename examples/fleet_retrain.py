"""Fleet-scale monitoring with live in-process retraining.

The full closed loop at fleet scale — the paper's
monitor → flag → label → retrain story running *inside* the fleet
engine, with no restart and no model handoff:

* a 32-device fleet streams signature windows through one batched
  `FleetMonitor`; its `TrustedHMD` wraps a **histogram-grown** random
  forest (`grower="hist"`), so the training set lives on as a binned
  growth buffer;
* a zero-day trojan family spreads across part of the fleet — its
  windows are withheld and queued for forensics;
* between inference batches a `FleetRetrainer` triages the queue into
  candidate novel-workload clusters, asks the analyst for one label per
  cluster, and warm-refits the shared HMD (`partial_refit`: scaler,
  PCA and bin edges stay fixed, the member trees regrow from the grown
  binned buffer, and the flattened vote backend recompiles);
* later batches in the *same drain* are already served by the
  refreshed model — the trojan goes from "uncertain, withheld" to
  "confidently detected".

    python examples/fleet_retrain.py
"""

import numpy as np

from repro.data import build_dvfs_dataset
from repro.ml import RandomForestClassifier
from repro.fleet import BackpressurePolicy, FleetMonitor, FleetRetrainer
from repro.uncertainty import TrustedHMD

SCALE = 0.25
THRESHOLD = 0.40
N_DEVICES = 32


def main() -> None:
    rng = np.random.default_rng(7)
    dataset = build_dvfs_dataset(seed=7, scale=SCALE)

    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=80, grower="hist", random_state=7),
        threshold=THRESHOLD,
    ).fit(dataset.train.X, dataset.train.y)
    print(f"warm-refit capable: {hmd.supports_partial_refit()}")

    monitor = FleetMonitor(
        hmd,
        batch_size=128,
        policy=BackpressurePolicy(max_pending=8192, max_pending_per_device=512),
    )

    # Several sessions of the trojan family across the infected devices.
    trojan = np.vstack([
        ds.unknown.X[ds.unknown.apps == "banking_trojan"]
        for ds in (dataset, build_dvfs_dataset(seed=9, scale=SCALE),
                   build_dvfs_dataset(seed=11, scale=SCALE))
    ])
    known = dataset.test.X
    entropy_before = hmd.predictive_entropy(trojan).mean()

    # --- traffic: most devices run known apps, a few are infected -----
    infected = {f"dev-{i:03d}" for i in range(6)}
    for step in range(600):
        device = f"dev-{rng.integers(N_DEVICES):03d}"
        pool = trojan if device in infected and rng.random() < 0.7 else known
        monitor.submit(device, pool[rng.integers(len(pool))])
    print(f"submitted {monitor.pending} windows from {N_DEVICES} devices")

    # --- the analyst oracle: one label per triage cluster -------------
    benign_centroid = dataset.train.X[dataset.train.y == 0].mean(axis=0)
    malware_centroid = dataset.train.X[dataset.train.y == 1].mean(axis=0)
    trojan_centroid = trojan.mean(axis=0)

    def analyst(cluster):
        # The specialist inspects the cluster's forensic data and
        # recognises the family; here that is a nearest-known-family
        # call on the cluster centroid (the trojan counts as malware).
        distances = {
            0: np.linalg.norm(cluster.centroid - benign_centroid),
            1: min(
                np.linalg.norm(cluster.centroid - malware_centroid),
                np.linalg.norm(cluster.centroid - trojan_centroid),
            ),
        }
        return min(distances, key=distances.get)

    retrainer = FleetRetrainer(
        monitor,
        analyst,
        dataset.train.X,
        dataset.train.y,
        min_batch=25,
        random_state=7,
    )

    outcomes = retrainer.drain()
    print(f"\nprocessed {monitor.n_batches} batches; "
          f"flagged {monitor.stats.n_flagged} windows "
          f"({monitor.stats.rejection_rate:.1%})")
    for i, outcome in enumerate(outcomes):
        if outcome.n_labelled:
            print(f"  after batch {i}: labelled {outcome.n_labelled} windows "
                  f"in {outcome.n_clusters} clusters"
                  + ("  -> warm retrain + recompile" if outcome.retrained else ""))
    print(f"total retrains: {retrainer.loop.n_retrains}")

    # --- second wave: the infection keeps spreading ---------------------
    flagged_before = monitor.stats.n_flagged
    seen_before = monitor.stats.n_seen
    for step in range(300):
        device = f"dev-{rng.integers(N_DEVICES):03d}"
        pool = trojan if device in infected and rng.random() < 0.7 else known
        monitor.submit(device, pool[rng.integers(len(pool))])
    monitor.drain()
    wave2_rate = (monitor.stats.n_flagged - flagged_before) / (
        monitor.stats.n_seen - seen_before
    )
    print(f"\nsecond wave, served by the live-retrained model:")
    print(f"  rejection rate {flagged_before / seen_before:.1%} -> {wave2_rate:.1%}")
    print(f"  trojan mean entropy {entropy_before:.3f} -> "
          f"{hmd.predictive_entropy(trojan).mean():.3f}")

    # Fresh sessions of the same family, never streamed before:
    fresh = build_dvfs_dataset(seed=13, scale=SCALE)
    fresh_trojan = fresh.unknown.X[fresh.unknown.apps == "banking_trojan"]
    verdict = hmd.analyze(fresh_trojan)
    confident = np.mean(verdict.accepted & (verdict.predictions == 1))
    print(f"  fresh trojan sessions confidently detected: {confident:.1%} "
          f"(withheld: {verdict.rejection_rate:.1%})")


if __name__ == "__main__":
    main()
