"""Fleet-scale monitoring: one trusted HMD serving many devices.

Extends examples/online_monitor.py from one phone to a monitored fleet:

* 48 devices stream signature windows — most run known benign apps, a
  few are infected with known malware, two run zero-day workloads;
* the FleetMonitor multiplexes every stream through a bounded ingress
  queue and screens fixed-size batches with ONE vectorised ensemble
  pass each;
* a deliberately tight backpressure policy shows load shedding under
  overload;
* the fleet report ranks devices: infected ones by alert rate,
  zero-day ones by recent entropy (they get flagged, not misclassified).

    python examples/fleet_monitor.py
"""

from repro.data import build_dvfs_dataset
from repro.fleet import BackpressurePolicy, FleetMonitor, FleetWindowSampler
from repro.hmd.apps import DVFS_KNOWN_BENIGN, DVFS_KNOWN_MALWARE, DVFS_UNKNOWN
from repro.ml import RandomForestClassifier
from repro.sim import FleetPopulation
from repro.uncertainty import TrustedHMD

SCALE = 0.25
N_DEVICES = 48
ROUNDS = 25


def main() -> None:
    dataset = build_dvfs_dataset(seed=7, scale=SCALE)
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=60, random_state=7),
        threshold=0.40,
    ).fit(dataset.train.X, dataset.train.y)

    population = FleetPopulation(
        DVFS_KNOWN_BENIGN,
        DVFS_KNOWN_MALWARE,
        DVFS_UNKNOWN,
        malware_fraction=0.10,
        zero_day_fraction=0.05,
        random_state=7,
    )
    devices = population.sample(N_DEVICES)
    sampler = FleetWindowSampler(dataset, devices, random_state=7)

    # Drift reference: entropies of held-out known traffic.
    reference = hmd.predictive_entropy(dataset.test.X)

    monitor = FleetMonitor(
        hmd,
        batch_size=128,
        policy=BackpressurePolicy(max_pending=512, max_pending_per_device=16),
        drift_reference=reference,
    )
    monitor.register_fleet(devices)

    print(f"Streaming {ROUNDS} rounds from {N_DEVICES} devices ...")
    for device_id, window in sampler.rounds(ROUNDS):
        monitor.submit(device_id, window)
        # Service the queue as it fills (a real deployment would run
        # this on the inference core's clock, not per submission).
        if monitor.pending >= monitor.batch_size:
            monitor.process_batch()
    monitor.drain()

    report = monitor.report()
    print()
    print(report.as_text(max_rows=12))

    infected = report.infected_devices(min_alert_rate=0.6)
    print("\nDevices to quarantine (accepted verdicts mostly malware):")
    for d in infected:
        print(f"  {d.device_id}  cohort={d.cohort}  alert_rate={d.alert_rate:.0%}")

    print("\nDrift / zero-day candidates (highest recent entropy):")
    for d in report.most_uncertain_devices(4):
        print(f"  {d.device_id}  cohort={d.cohort}  recent_H={d.recent_entropy:.3f}  "
              f"rejection={d.rejection_rate:.0%}")

    print(f"\nForensic queue holds {len(monitor.forensics)} flagged windows "
          f"for analyst triage; {report.n_shed} windows shed by backpressure.")


if __name__ == "__main__":
    main()
