"""Quickstart: build a DVFS dataset, train a Trusted HMD, screen inputs.

Runs in under a minute on a laptop (reduced dataset scale).

    python examples/quickstart.py
"""

from repro.data import build_dvfs_dataset
from repro.ml import RandomForestClassifier
from repro.ml.metrics import f1_score
from repro.uncertainty import TrustedHMD

SCALE = 0.25  # fraction of the paper's Table I sample counts
THRESHOLD = 0.40  # the paper's DVFS operating point (bits)


def main() -> None:
    # 1. Simulate the DVFS dataset (Android SoC power-management traces
    #    -> governor state sequences -> window features).
    dataset = build_dvfs_dataset(seed=7, scale=SCALE)
    print(dataset.summary())
    print()

    # 2. Train the uncertainty-aware HMD: scaler -> bagged ensemble ->
    #    vote-entropy estimator -> rejection policy.
    hmd = TrustedHMD(
        RandomForestClassifier(n_estimators=100, random_state=7),
        threshold=THRESHOLD,
    )
    hmd.fit(dataset.train.X, dataset.train.y)

    # 3. Screen the held-out KNOWN workloads: decisions are emitted with
    #    low uncertainty.
    known = hmd.analyze(dataset.test.X)
    f1 = f1_score(
        dataset.test.y[known.accepted], known.predictions[known.accepted]
    )
    print(f"Known workloads:   rejected {known.rejection_rate:6.1%}, "
          f"accepted-F1 {f1:.3f}")

    # 4. Screen the UNKNOWN workloads (apps never seen in training):
    #    most are flagged as uncertain instead of silently classified.
    unknown = hmd.analyze(dataset.unknown.X)
    print(f"Unknown workloads: rejected {unknown.rejection_rate:6.1%}  "
          "<- zero-day candidates routed to the analyst")

    # 5. Compare against the conventional (untrusted) HMD, which happily
    #    emits a verdict for every unknown workload.
    from repro.uncertainty import UntrustedHMD

    untrusted = UntrustedHMD(
        RandomForestClassifier(n_estimators=100, random_state=7)
    ).fit(dataset.train.X, dataset.train.y)
    silent = untrusted.predict(dataset.unknown.X)
    wrong = (silent != dataset.unknown.y).mean()
    print(f"\nUntrusted HMD on the same unknowns: 0.0% rejected, "
          f"{wrong:.1%} of its silent verdicts are wrong.")


if __name__ == "__main__":
    main()
